package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seqstore/internal/api"
	"seqstore/internal/query"
	"seqstore/internal/telemetry"
	"seqstore/internal/trace"
)

// maxAggBatchBody and maxBulkBody mirror the store nodes' request-body
// bounds (the proxy buffers a bulk body once so a shard hiccup never
// leaves a half-consumed stream).
const (
	maxAggBatchBody = 1 << 20
	maxBulkBody     = 1 << 26
)

// renderSpec renders shard-local row/column indices back into the
// index-spec wire syntax, packing consecutive runs into lo:hi ranges.
// Order and duplicates survive the round trip, so the fragment a store
// node parses is exactly the multiset SplitSelection produced.
func renderSpec(idx []int) string {
	var b strings.Builder
	for run := 0; run < len(idx); {
		end := run + 1
		for end < len(idx) && idx[end] == idx[end-1]+1 {
			end++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if end-run >= 2 {
			fmt.Fprintf(&b, "%d:%d", idx[run], idx[end-1]+1)
		} else {
			fmt.Fprintf(&b, "%d", idx[run])
		}
		run = end
	}
	return b.String()
}

// decodePartial inverts the store node's base64(SQP1) partial encoding.
func decodePartial(enc string) (*query.Partial, error) {
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("cluster: undecodable partial: %v", err)
	}
	p := new(query.Partial)
	if err := p.UnmarshalBinary(raw); err != nil {
		return nil, fmt.Errorf("cluster: %v", err)
	}
	return p, nil
}

// --- Info, health, metrics ---------------------------------------------------

// handleInfo composes the cluster-wide /v1/info from live per-shard
// infos: global dimensions, summed stored numbers, a row-weighted space
// ratio, and the shard map itself.
func (p *Proxy) handleInfo(w http.ResponseWriter, r *http.Request) {
	topo, shards := p.view()
	infos, fails := p.fetchInfos(r.Context(), shards)
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	n, m, err := composeDims(topo, infos)
	if err != nil {
		api.WriteError(w, r, err)
		return
	}
	body := api.InfoResponse{
		Method:    infos[0].Method,
		Rows:      n,
		Cols:      m,
		RowLabels: true,
		ColLabels: true,
		Shards:    make([]api.ShardInfo, len(shards)),
	}
	var weighted float64
	for s, info := range infos {
		if info.Method != body.Method {
			body.Method = "mixed"
		}
		body.StoredNumbers += info.StoredNumbers
		body.RowLabels = body.RowLabels && info.RowLabels
		body.ColLabels = body.ColLabels && info.ColLabels
		body.Writable = body.Writable || info.Writable
		weighted += info.SpaceRatio * float64(info.Rows)
		body.Shards[s] = api.ShardInfo{
			Shard: s,
			Addr:  topo.Shards[s].Addr,
			Lo:    topo.Shards[s].Lo,
			Hi:    topo.Shards[s].Hi,
			Rows:  info.Rows,
		}
	}
	if n > 0 {
		body.SpaceRatio = weighted / float64(n)
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// handleHealthz probes every shard concurrently and reports per-shard
// liveness. The proxy itself is healthy as long as it can answer, so the
// status degrades rather than fails when shards are down.
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	topo, shards := p.view()
	health := make([]api.ShardHealth, len(shards))
	scatter(shards, allShards(shards), func(c *shardClient) error {
		h := api.ShardHealth{Shard: c.shard, Addr: topo.Shards[c.shard].Addr}
		if err := c.check(r.Context()); err != nil {
			h.Error = err.Error()
		} else {
			h.Healthy = true
		}
		health[c.shard] = h
		return nil
	})
	status := "ok"
	for _, h := range health {
		if !h.Healthy {
			status = "degraded"
		}
	}
	body := api.HealthzResponse{Status: status, Shards: health}
	if p.opts.SLOObjective > 0 {
		body.SLO = p.tel.Snapshot().SLO
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// handleMetrics serves the proxy's metrics plane. The default body is the
// proxy's own registry (endpoint histograms, runtime, per-shard client
// gauges) as JSON; ?format=prom renders the same snapshot in the Prometheus
// text format, matching the store nodes' endpoint. ?scope=cluster widens
// the view to the store nodes themselves: the proxy scrapes every shard's
// /v1/metrics and fans the registries in, labelled per shard — one scrape
// for the whole cluster.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cluster := q.Get("scope") == "cluster"
	prom := q.Get("format") == "prom"
	switch {
	case cluster && prom:
		p.serveClusterProm(w, r)
	case cluster:
		p.serveClusterJSON(w, r)
	case prom:
		p.serveProxyProm(w, r)
	default:
		p.serveProxyJSON(w, r)
	}
}

// serveProxyJSON is the proxy-scope JSON metrics body.
func (p *Proxy) serveProxyJSON(w http.ResponseWriter, r *http.Request) {
	topo, shards := p.view()
	snap := p.tel.Snapshot()
	perShard := make([]map[string]interface{}, len(shards))
	for s, c := range shards {
		lat := c.lat.Snapshot()
		perShard[s] = map[string]interface{}{
			"shard":          s,
			"addr":           topo.Shards[s].Addr,
			"healthy":        c.healthy.Load(),
			"last_error":     c.lastErr.Load(),
			"inflight":       c.inflight.Load(),
			"requests_total": c.requests.Load(),
			"errors_total":   c.errors.Load(),
			"hedges_total":   c.hedges.Load(),
			"p99_ms":         lat.P99Ms,
			"latency":        lat,
		}
	}
	body := map[string]interface{}{
		"uptime_seconds": snap.UptimeSeconds,
		"endpoints":      snap.Endpoints,
		"runtime":        snap.Runtime,
		"topology": map[string]interface{}{
			"shards":     len(shards),
			"open_shard": topo.OpenShard(),
		},
		"shards": perShard,
		"traces": map[string]interface{}{
			"buffered": len(p.ring.Snapshot()),
			"capacity": p.ring.Cap(),
			"total":    p.ring.Total(),
		},
	}
	if snap.SLO != nil {
		body["slo"] = snap.SLO
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// serveProxyProm renders the proxy's own registry plus the per-shard client
// gauges in the Prometheus text format.
func (p *Proxy) serveProxyProm(w http.ResponseWriter, r *http.Request) {
	topo, shards := p.view()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := telemetry.WritePrometheus(w, p.tel.Snapshot()); err != nil {
		trace.LoggerFrom(r.Context()).Error("prometheus render failed", "err", err)
		return
	}
	if err := writeShardGauges(w, topo, shards); err != nil {
		trace.LoggerFrom(r.Context()).Error("prometheus render failed", "err", err)
	}
}

// writeShardGauges renders the proxy's per-shard client view — health,
// inflight, request/error/hedge totals and observed p99 — one family per
// metric with shard/addr labels.
func writeShardGauges(w io.Writer, topo *Topology, shards []*shardClient) error {
	type fam struct {
		name, typ, help string
		value           func(c *shardClient) float64
	}
	boolGauge := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	fams := []fam{
		{"seqstore_shard_healthy", "gauge", "Whether the last exchange with the shard succeeded.",
			func(c *shardClient) float64 { return boolGauge(c.healthy.Load()) }},
		{"seqstore_shard_inflight", "gauge", "Requests currently in flight to the shard.",
			func(c *shardClient) float64 { return float64(c.inflight.Load()) }},
		{"seqstore_shard_requests_total", "counter", "Requests sent to the shard.",
			func(c *shardClient) float64 { return float64(c.requests.Load()) }},
		{"seqstore_shard_errors_total", "counter", "Failed exchanges with the shard.",
			func(c *shardClient) float64 { return float64(c.errors.Load()) }},
		{"seqstore_shard_hedges_total", "counter", "Hedged attempts launched against the shard.",
			func(c *shardClient) float64 { return float64(c.hedges.Load()) }},
		{"seqstore_shard_latency_p99_seconds", "gauge", "Observed p99 latency of the shard from this proxy.",
			func(c *shardClient) float64 { return c.lat.Snapshot().P99Ms / 1e3 }},
	}
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for s, c := range shards {
			if _, err := fmt.Fprintf(w, "%s{shard=\"%d\",addr=%q} %g\n",
				f.name, s, topo.Shards[s].Addr, f.value(c)); err != nil {
				return err
			}
		}
	}
	return nil
}

// serveClusterProm scrapes every shard's /v1/metrics?format=prom, parses
// the expositions (structural validation included) and re-renders them as
// one merged exposition with a shard label on every sample. A scrape
// pointed at the proxy therefore sees the whole cluster's registries
// without knowing the store nodes exist.
func (p *Proxy) serveClusterProm(w http.ResponseWriter, r *http.Request) {
	_, shards := p.view()
	parts := make([]telemetry.LabeledMetrics, len(shards))
	fails := scatter(shards, allShards(shards), func(c *shardClient) error {
		resp, err := c.do(r.Context(), http.MethodGet, "/v1/metrics?format=prom", nil, true)
		if err != nil {
			return err
		}
		if resp.status != http.StatusOK {
			return fmt.Errorf("shard %d: metrics scrape returned %d", c.shard, resp.status)
		}
		m, err := telemetry.ParsePrometheus(bytes.NewReader(resp.body))
		if err != nil {
			return fmt.Errorf("shard %d: unparseable exposition: %v", c.shard, err)
		}
		parts[c.shard] = telemetry.LabeledMetrics{
			Labels: map[string]string{"shard": strconv.Itoa(c.shard)},
			M:      m,
		}
		return nil
	})
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := telemetry.WriteMergedPrometheus(w, parts); err != nil {
		trace.LoggerFrom(r.Context()).Error("prometheus render failed", "err", err)
	}
}

// serveClusterJSON scrapes every shard's JSON metrics body and embeds them
// verbatim under per-shard entries.
func (p *Proxy) serveClusterJSON(w http.ResponseWriter, r *http.Request) {
	topo, shards := p.view()
	type shardMetrics struct {
		Shard   int             `json:"shard"`
		Addr    string          `json:"addr"`
		Metrics json.RawMessage `json:"metrics"`
	}
	out := make([]shardMetrics, len(shards))
	fails := scatter(shards, allShards(shards), func(c *shardClient) error {
		resp, err := c.do(r.Context(), http.MethodGet, "/v1/metrics", nil, true)
		if err != nil {
			return err
		}
		if resp.status != http.StatusOK {
			return fmt.Errorf("shard %d: metrics scrape returned %d", c.shard, resp.status)
		}
		if !json.Valid(resp.body) {
			return fmt.Errorf("shard %d: metrics body is not valid JSON", c.shard)
		}
		out[c.shard] = shardMetrics{
			Shard:   c.shard,
			Addr:    topo.Shards[c.shard].Addr,
			Metrics: json.RawMessage(resp.body),
		}
		return nil
	})
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"scope":  "cluster",
		"shards": out,
	})
}

// handleTraces mirrors the store node's trace ring for the proxy's own
// requests.
func (p *Proxy) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := p.ring.Snapshot()
	api.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"count":    len(traces),
		"capacity": p.ring.Cap(),
		"total":    p.ring.Total(),
		"traces":   traces,
	})
}

// --- Point reads -------------------------------------------------------------

// handleCell routes one cell lookup to the shard owning its row,
// rewriting the row index to shard-local on the way out and back to
// global on the way in. Label addressing needs the label → index maps the
// shards hold, so the proxy (which holds no data) rejects it.
func (p *Proxy) handleCell(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("row") != "" || q.Get("col") != "" {
		api.WriteInvalid(w, r,
			"the proxy is index-addressed: use integer i and j (label maps live on the store nodes)")
		return
	}
	i, err1 := strconv.Atoi(q.Get("i"))
	j, err2 := strconv.Atoi(q.Get("j"))
	if err1 != nil || err2 != nil {
		api.WriteInvalid(w, r, "cell needs integer i and j parameters")
		return
	}
	topo, shards := p.view()
	s := topo.Locate(i)
	if s < 0 {
		api.WriteErrorDetail(w, http.StatusBadRequest, api.ErrorDetail{
			Code:      api.CodeOutOfRange,
			Message:   fmt.Sprintf("row %d is outside every shard's range", i),
			RequestID: trace.FromContext(r.Context()).ID(),
		})
		return
	}
	c := shards[s]
	var body api.CellResponse
	path := fmt.Sprintf("/v1/cell?i=%d&j=%d", i-topo.Shards[s].Lo, j)
	if err := c.doJSON(r.Context(), http.MethodGet, path, nil, &body, true); err != nil {
		p.failShard(w, r, c, err)
		return
	}
	body.I = i
	api.WriteJSON(w, http.StatusOK, body)
}

// handleRow routes one row reconstruction to its shard.
func (p *Proxy) handleRow(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.URL.Query().Get("i"))
	if err != nil {
		api.WriteInvalid(w, r, "row needs an integer i parameter")
		return
	}
	topo, shards := p.view()
	s := topo.Locate(i)
	if s < 0 {
		api.WriteErrorDetail(w, http.StatusBadRequest, api.ErrorDetail{
			Code:      api.CodeOutOfRange,
			Message:   fmt.Sprintf("row %d is outside every shard's range", i),
			RequestID: trace.FromContext(r.Context()).ID(),
		})
		return
	}
	c := shards[s]
	var body api.RowResponse
	path := fmt.Sprintf("/v1/row?i=%d", i-topo.Shards[s].Lo)
	if err := c.doJSON(r.Context(), http.MethodGet, path, nil, &body, true); err != nil {
		p.failShard(w, r, c, err)
		return
	}
	body.I = i
	api.WriteJSON(w, http.StatusOK, body)
}

// handleCells fans a batched cell lookup out to the owning shards — one
// /v1/cells per shard carrying its cells — and reassembles the responses
// in the original request order.
func (p *Proxy) handleCells(w http.ResponseWriter, r *http.Request) {
	specs := r.URL.Query()["at"]
	var coords [][2]int
	for _, spec := range specs {
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			is, js, ok := strings.Cut(part, ":")
			if !ok {
				api.WriteInvalid(w, r, fmt.Sprintf("bad cell %q: want i:j", part))
				return
			}
			i, err1 := strconv.Atoi(strings.TrimSpace(is))
			j, err2 := strconv.Atoi(strings.TrimSpace(js))
			if err1 != nil || err2 != nil {
				api.WriteInvalid(w, r, fmt.Sprintf("bad cell %q: want integer i:j", part))
				return
			}
			coords = append(coords, [2]int{i, j})
		}
	}
	if len(coords) == 0 {
		api.WriteInvalid(w, r, "cells needs at=i:j[,i:j...] parameters")
		return
	}
	if len(coords) > p.opts.MaxBatchCells {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d cells exceeds limit %d", len(coords), p.opts.MaxBatchCells))
		return
	}
	topo, shards := p.view()
	type group struct {
		spec strings.Builder
		pos  []int // original positions, in per-shard request order
	}
	groups := make([]group, len(shards))
	for pos, c := range coords {
		s := topo.Locate(c[0])
		if s < 0 {
			api.WriteErrorDetail(w, http.StatusBadRequest, api.ErrorDetail{
				Code:      api.CodeOutOfRange,
				Message:   fmt.Sprintf("row %d is outside every shard's range", c[0]),
				RequestID: trace.FromContext(r.Context()).ID(),
			})
			return
		}
		g := &groups[s]
		if len(g.pos) > 0 {
			g.spec.WriteByte(',')
		}
		fmt.Fprintf(&g.spec, "%d:%d", c[0]-topo.Shards[s].Lo, c[1])
		g.pos = append(g.pos, pos)
	}
	var targets []int
	for s := range groups {
		if len(groups[s].pos) > 0 {
			targets = append(targets, s)
		}
	}
	out := make([]api.CellResponse, len(coords))
	fails := scatter(shards, targets, func(c *shardClient) error {
		g := &groups[c.shard]
		var body api.CellsResponse
		if err := c.doJSON(r.Context(), http.MethodGet, "/v1/cells?at="+g.spec.String(), nil, &body, true); err != nil {
			return err
		}
		if len(body.Cells) != len(g.pos) {
			return fmt.Errorf("shard %d returned %d cells, expected %d", c.shard, len(body.Cells), len(g.pos))
		}
		lo := topo.Shards[c.shard].Lo
		for k, cell := range body.Cells {
			cell.I += lo
			out[g.pos[k]] = cell
		}
		return nil
	})
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.CellsResponse{Count: len(out), Cells: out})
}

// handleRows fans a batched row reconstruction out by shard and
// reassembles in request order, re-mapping row indices to global.
func (p *Proxy) handleRows(w http.ResponseWriter, r *http.Request) {
	spec := r.URL.Query().Get("i")
	if strings.TrimSpace(spec) == "" {
		api.WriteInvalid(w, r, "rows needs an i index spec, e.g. i=0:8,17")
		return
	}
	n, _, fails := p.globalDims(r.Context())
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	idx, err := query.ParseIndexSpec(spec, n)
	if err != nil {
		api.WriteInvalid(w, r, err.Error())
		return
	}
	if len(idx) == 0 {
		api.WriteInvalid(w, r, "rows selection is empty")
		return
	}
	if len(idx) > p.opts.MaxBatchRows {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d rows exceeds limit %d", len(idx), p.opts.MaxBatchRows))
		return
	}
	topo, shards := p.view()
	type group struct {
		local []int
		pos   []int
	}
	groups := make([]group, len(shards))
	for pos, i := range idx {
		s := topo.Locate(i)
		if s < 0 {
			api.WriteErrorDetail(w, http.StatusBadRequest, api.ErrorDetail{
				Code:      api.CodeOutOfRange,
				Message:   fmt.Sprintf("row %d is outside every shard's range", i),
				RequestID: trace.FromContext(r.Context()).ID(),
			})
			return
		}
		groups[s].local = append(groups[s].local, i-topo.Shards[s].Lo)
		groups[s].pos = append(groups[s].pos, pos)
	}
	var targets []int
	for s := range groups {
		if len(groups[s].pos) > 0 {
			targets = append(targets, s)
		}
	}
	out := make([]api.RowResponse, len(idx))
	fails = scatter(shards, targets, func(c *shardClient) error {
		g := &groups[c.shard]
		var body api.RowsResponse
		if err := c.doJSON(r.Context(), http.MethodGet, "/v1/rows?i="+renderSpec(g.local), nil, &body, true); err != nil {
			return err
		}
		if len(body.Rows) != len(g.pos) {
			return fmt.Errorf("shard %d returned %d rows, expected %d", c.shard, len(body.Rows), len(g.pos))
		}
		lo := topo.Shards[c.shard].Lo
		for k, row := range body.Rows {
			row.I += lo
			out[g.pos[k]] = row
		}
		return nil
	})
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.RowsResponse{Count: len(out), Rows: out})
}

// --- Aggregates (scatter/gather) ---------------------------------------------

// parsedAgg is one aggregate query resolved against the global shape.
type parsedAgg struct {
	f   string
	agg query.Aggregate
	sel query.Selection
}

// parseAggQuery resolves (f, rows, cols) against the global dimensions,
// exactly as a store node resolves them against its local ones.
func parseAggQuery(req api.AggregateRequest, n, m int) (parsedAgg, error) {
	f := req.F
	if f == "" {
		f = "avg"
	}
	agg, err := query.ParseAggregate(f)
	if err != nil {
		return parsedAgg{}, err
	}
	rows, err := query.ParseIndexSpec(req.Rows, n)
	if err != nil {
		return parsedAgg{}, fmt.Errorf("rows: %w", err)
	}
	cols, err := query.ParseIndexSpec(req.Cols, m)
	if err != nil {
		return parsedAgg{}, fmt.Errorf("cols: %w", err)
	}
	pa := parsedAgg{f: f, agg: agg, sel: query.Selection{Rows: rows, Cols: cols}}
	if err := pa.sel.Validate(n, m); err != nil {
		return parsedAgg{}, err
	}
	return pa, nil
}

// handleAgg is the deprecated GET query-param aggregate form at the
// proxy, sharing the scatter/gather path of POST /v1/aggregate.
func (p *Proxy) handleAgg(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p.serveAggregate(w, r, api.AggregateRequest{
		F: q.Get("f"), Rows: q.Get("rows"), Cols: q.Get("cols"),
	})
}

// handleAggregate is POST /v1/aggregate at the proxy.
func (p *Proxy) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req api.AggregateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAggBatchBody))
	if err := dec.Decode(&req); err != nil {
		api.WriteInvalid(w, r, fmt.Sprintf("aggregate: malformed JSON body: %v", err))
		return
	}
	p.serveAggregate(w, r, req)
}

// serveAggregate is the tentpole path: split the validated selection by
// shard row ranges, evaluate each fragment remotely into an exact partial,
// and merge in shard order. Because every partial carries exact
// accumulator state and the final rounding runs through the same finalize
// code a store node uses, the result is bit-identical to a single node
// evaluating the unsplit selection — for every aggregate, any shard
// count, any per-shard worker count.
func (p *Proxy) serveAggregate(w http.ResponseWriter, r *http.Request, req api.AggregateRequest) {
	if req.Partial {
		api.WriteInvalid(w, r,
			"partial evaluation is the shard-internal wire form; the proxy returns finished values")
		return
	}
	n, m, fails := p.globalDims(r.Context())
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	pa, err := parseAggQuery(req, n, m)
	if err != nil {
		api.WriteError(w, r, err)
		return
	}
	body := api.AggregateResponse{F: pa.f, Rows: len(pa.sel.Rows), Cols: len(pa.sel.Cols)}
	if pa.agg == query.Count {
		// Count is selection arithmetic; the validated selection already
		// answers it without touching a shard.
		body.Value, body.Nonfinite = api.Float(float64(pa.sel.NumCells()))
		if req.Explain {
			body.Explain = &api.Explain{
				Plan:  query.PlanCount,
				Cells: int64(pa.sel.NumCells()),
				Cost:  trace.LedgerFrom(r.Context()).Snapshot(),
			}
		}
		api.WriteJSON(w, http.StatusOK, body)
		return
	}
	v, shardEx, gerr, fails := p.gather(r, pa, req.Explain)
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	if gerr != nil {
		api.WriteError(w, r, gerr)
		return
	}
	body.Value, body.Nonfinite = api.Float(v)
	if req.Explain {
		body.Explain = mergeShardExplains(r.Context(), shardEx)
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// mergeShardExplains folds per-shard explain blocks into the proxy's
// top-level view: numeric fields sum across shards (the scattered fragments
// partition the selection, so the sums describe the whole query), the plan
// and plan-cache labels survive when the shards agree and degrade to
// "mixed" otherwise, Workers reports the widest shard, and Cost is the
// proxy's own ledger — the fold of every winning attempt's cost headers.
func mergeShardExplains(ctx context.Context, shards []api.ShardExplain) *api.Explain {
	e := &api.Explain{Shards: shards}
	for k, se := range shards {
		if k == 0 {
			e.Plan, e.PlanCache, e.ChunkRows = se.Plan, se.PlanCache, se.ChunkRows
		} else {
			if se.Plan != e.Plan {
				e.Plan = "mixed"
			}
			if se.PlanCache != e.PlanCache {
				e.PlanCache = "mixed"
			}
			if se.ChunkRows != e.ChunkRows {
				e.ChunkRows = 0 // per-shard; see Shards
			}
		}
		if se.Workers > e.Workers {
			e.Workers = se.Workers
		}
		e.Cells += se.Cells
		e.Chunks += se.Chunks
		e.Runs += se.Runs
		e.CoalescedScans += se.CoalescedScans
		e.ScanRows += se.ScanRows
		e.PointRows += se.PointRows
		e.ZeroRows += se.ZeroRows
		e.EstRowsRead += se.EstRowsRead
		e.EstDiskAccesses += se.EstDiskAccesses
		e.EstPagesTouched += se.EstPagesTouched
		e.EstDeltasProbed += se.EstDeltasProbed
	}
	e.Cost = trace.LedgerFrom(ctx).Snapshot()
	return e
}

// gather scatters one parsed aggregate and merges the shard partials.
// With explain set, each fragment request also asks its shard for an
// explain block; the blocks come back in shard order.
func (p *Proxy) gather(r *http.Request, pa parsedAgg, explain bool) (float64, []api.ShardExplain, error, []shardFailure) {
	topo, shards := p.view()
	frags, err := query.SplitSelection(pa.sel, topo.Ranges())
	if err != nil {
		return 0, nil, err, nil
	}
	var targets []int
	for s := range frags {
		if len(frags[s].Rows) > 0 {
			targets = append(targets, s)
		}
	}
	parts := make([]*query.Partial, len(shards))
	exs := make([]*api.Explain, len(shards))
	fails := scatter(shards, targets, func(c *shardClient) error {
		frag := frags[c.shard]
		reqBody := api.AggregateRequest{
			F:       pa.f,
			Rows:    renderSpec(frag.Rows),
			Cols:    renderSpec(frag.Cols),
			Partial: true,
			Explain: explain,
		}
		var resp api.AggregateResponse
		if err := c.doJSON(r.Context(), http.MethodPost, "/v1/aggregate", reqBody, &resp, true); err != nil {
			return err
		}
		part, err := decodePartial(resp.Partial)
		if err != nil {
			return err
		}
		parts[c.shard] = part
		exs[c.shard] = resp.Explain
		return nil
	})
	if len(fails) > 0 {
		return 0, nil, nil, fails
	}
	var shardEx []api.ShardExplain
	if explain {
		for s, ex := range exs {
			if ex != nil {
				shardEx = append(shardEx, api.ShardExplain{Shard: s, Explain: *ex})
			}
		}
	}
	// parts is indexed by shard, so the merge order is the deterministic
	// shard order regardless of response arrival (merge order doesn't
	// change the bits — the accumulators are exact — but determinism makes
	// that property testable).
	v, err := query.MergePartials(pa.agg, parts)
	return v, shardEx, err, nil
}

// handleAggBatch scatters a whole aggregate batch: each shard receives
// one /v1/aggregate/batch carrying the fragments of every query that
// touches it (keeping the store nodes' scan-sharing across queries), and
// each query's partials merge in shard order. Per-query failures cost
// that item its status, mirroring the single-node batch contract; a
// shard-level failure fails the request with 503 and the shard detail.
func (p *Proxy) handleAggBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req api.BatchAggregateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAggBatchBody))
	if err := dec.Decode(&req); err != nil {
		api.WriteInvalid(w, r, fmt.Sprintf("aggregate/batch: malformed JSON body: %v", err))
		return
	}
	if req.Partial {
		api.WriteInvalid(w, r,
			"partial evaluation is the shard-internal wire form; the proxy returns finished values")
		return
	}
	if len(req.Queries) == 0 {
		api.WriteInvalid(w, r, `aggregate/batch needs a non-empty "queries" array`)
		return
	}
	if len(req.Queries) > p.opts.MaxBatchQueries {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d queries exceeds limit %d", len(req.Queries), p.opts.MaxBatchQueries))
		return
	}
	n, m, fails := p.globalDims(r.Context())
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}
	topo, shards := p.view()
	ranges := topo.Ranges()

	numQ := len(req.Queries)
	parsed := make([]parsedAgg, numQ)
	parseErrs := make([]error, numQ)
	// Per-shard batch under construction: the fragment requests plus the
	// query index each one answers.
	type shardBatch struct {
		queries []api.AggregateRequest
		qi      []int
	}
	batches := make([]shardBatch, len(shards))
	for qi, bq := range req.Queries {
		pa, err := parseAggQuery(bq, n, m)
		if err != nil {
			parseErrs[qi] = err
			continue
		}
		parsed[qi] = pa
		if pa.agg == query.Count {
			continue // answered locally, like the single-query path
		}
		frags, err := query.SplitSelection(pa.sel, ranges)
		if err != nil {
			parseErrs[qi] = err
			continue
		}
		for s := range frags {
			if len(frags[s].Rows) == 0 {
				continue
			}
			batches[s].queries = append(batches[s].queries, api.AggregateRequest{
				F:       pa.f,
				Rows:    renderSpec(frags[s].Rows),
				Cols:    renderSpec(frags[s].Cols),
				Explain: req.Explain || bq.Explain,
			})
			batches[s].qi = append(batches[s].qi, qi)
		}
	}

	var targets []int
	for s := range batches {
		if len(batches[s].queries) > 0 {
			targets = append(targets, s)
		}
	}
	// partials[qi][s] is query qi's partial from shard s; itemErrs[qi]
	// records a per-item remote failure (each slot is written by at most
	// one scatter goroutine per shard, so placement is race-free; the
	// merge below runs after the barrier).
	partials := make([][]*query.Partial, numQ)
	for qi := range partials {
		partials[qi] = make([]*query.Partial, len(shards))
	}
	explains := make([][]*api.Explain, numQ)
	for qi := range explains {
		explains[qi] = make([]*api.Explain, len(shards))
	}
	itemErrs := make([][]*remoteError, numQ)
	for qi := range itemErrs {
		itemErrs[qi] = make([]*remoteError, len(shards))
	}
	fails = scatter(shards, targets, func(c *shardClient) error {
		b := &batches[c.shard]
		var resp api.BatchAggregateResponse
		err := c.doJSON(r.Context(), http.MethodPost, "/v1/aggregate/batch",
			api.BatchAggregateRequest{Queries: b.queries, Partial: true}, &resp, true)
		if err != nil {
			return err
		}
		if len(resp.Items) != len(b.queries) {
			return fmt.Errorf("shard %d returned %d items, expected %d", c.shard, len(resp.Items), len(b.queries))
		}
		for k, item := range resp.Items {
			qi := b.qi[k]
			if item.Status != http.StatusOK {
				itemErrs[qi][c.shard] = &remoteError{status: item.Status, msg: item.Error}
				continue
			}
			part, err := decodePartial(item.Partial)
			if err != nil {
				return err
			}
			partials[qi][c.shard] = part
			explains[qi][c.shard] = item.Explain
		}
		return nil
	})
	if len(fails) > 0 {
		p.failScatter(w, r, fails)
		return
	}

	out := make([]api.BatchAggregateItem, numQ)
	hadErr := false
	for qi := range req.Queries {
		if err := parseErrs[qi]; err != nil {
			status, _ := api.Classify(err)
			if status == http.StatusInternalServerError {
				status = http.StatusBadRequest // parse errors are the client's
			}
			out[qi] = api.BatchAggregateItem{Status: status, Error: err.Error()}
			hadErr = true
			continue
		}
		pa := parsed[qi]
		for _, re := range itemErrs[qi] {
			if re != nil {
				out[qi] = api.BatchAggregateItem{Status: re.status, Error: re.msg}
				hadErr = true
				break
			}
		}
		if out[qi].Status != 0 {
			continue
		}
		it := api.BatchAggregateItem{
			Status: http.StatusOK,
			F:      pa.f,
			Rows:   len(pa.sel.Rows),
			Cols:   len(pa.sel.Cols),
		}
		var v float64
		var err error
		if pa.agg == query.Count {
			v = float64(pa.sel.NumCells())
		} else {
			v, err = query.MergePartials(pa.agg, partials[qi])
		}
		if err != nil {
			status, _ := api.Classify(err)
			out[qi] = api.BatchAggregateItem{Status: status, Error: err.Error()}
			hadErr = true
			continue
		}
		it.Value, it.Nonfinite = api.Float(v)
		if req.Explain || req.Queries[qi].Explain {
			if pa.agg == query.Count {
				it.Explain = &api.Explain{
					Plan:  query.PlanCount,
					Cells: int64(pa.sel.NumCells()),
					Cost:  trace.LedgerFrom(r.Context()).Snapshot(),
				}
			} else {
				var shardEx []api.ShardExplain
				for s, ex := range explains[qi] {
					if ex != nil {
						shardEx = append(shardEx, api.ShardExplain{Shard: s, Explain: *ex})
					}
				}
				it.Explain = mergeShardExplains(r.Context(), shardEx)
			}
		}
		out[qi] = it
	}
	api.WriteJSON(w, http.StatusOK, api.BatchAggregateResponse{
		Took:   time.Since(start).Milliseconds(),
		Errors: hadErr,
		Items:  out,
	})
}

// --- Writes ------------------------------------------------------------------

// handleBulk forwards the NDJSON append to the open-ended shard — the one
// whose range absorbs new rows — and re-maps the assigned row indices to
// global. Appends are not idempotent, so they are never hedged.
func (p *Proxy) handleBulk(w http.ResponseWriter, r *http.Request) {
	topo, shards := p.view()
	open := topo.OpenShard()
	if open < 0 {
		api.WriteErrorDetail(w, http.StatusForbidden, api.ErrorDetail{
			Code:      api.CodeNotWritable,
			Message:   "topology has no open-ended shard: every row range is closed, so the cluster cannot absorb appends",
			RequestID: trace.FromContext(r.Context()).ID(),
		})
		return
	}
	bodyBytes, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBulkBody))
	if err != nil {
		api.WriteInvalid(w, r, fmt.Sprintf("bulk: reading body: %v", err))
		return
	}
	c := shards[open]
	resp, err := c.do(r.Context(), http.MethodPost, "/v1/bulk", bodyBytes, false)
	if err != nil {
		p.failShard(w, r, c, err)
		return
	}
	if resp.status/100 != 2 {
		p.failShard(w, r, c, decodeRemote(resp))
		return
	}
	var body api.BulkResponse
	if err := json.Unmarshal(resp.body, &body); err != nil {
		p.failShard(w, r, c, fmt.Errorf("shard %d (%s): undecodable bulk response: %v", c.shard, c.addr, err))
		return
	}
	lo := topo.Shards[open].Lo
	for k := range body.Items {
		if body.Items[k].Create.Status == http.StatusCreated {
			body.Items[k].Create.Row += lo
		}
	}
	p.markDimsStale()
	api.WriteJSON(w, http.StatusOK, body)
}
