package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seqstore/internal/api"
	"seqstore/internal/core"
	"seqstore/internal/dataset"
	"seqstore/internal/ingest"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
	"seqstore/internal/query"
	"seqstore/internal/server"
	"seqstore/internal/trace"
)

// phoneMatrix builds phone-like test data with a couple of all-zero
// customers so the shard slices exercise the SVDD zero-row flags too.
func phoneMatrix(t *testing.T, n, m int) *linalg.Matrix {
	t.Helper()
	cfg := dataset.DefaultPhoneConfig(n)
	cfg.M = m
	cfg.ZeroFrac = 0
	x := dataset.GeneratePhone(cfg)
	for _, i := range []int{3, n - 1} {
		row := x.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	return x
}

func compressStore(t *testing.T, x *linalg.Matrix) *core.Store {
	t.Helper()
	s, err := core.Compress(matio.NewMem(x), core.Options{Budget: 0.10, FlagZeroRows: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// recordingTransport counts the disk accesses every store-node response
// reports, so tests can pin proxy ledger = Σ shard ledgers exactly.
type recordingTransport struct {
	base http.RoundTripper
	disk atomic.Int64
}

func (rt *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := rt.base.RoundTrip(req)
	if err == nil {
		if v, perr := strconv.ParseInt(resp.Header.Get(trace.HeaderDiskAccesses), 10, 64); perr == nil {
			rt.disk.Add(v)
		}
	}
	return resp, err
}

// testCluster is an in-process cluster: the full store, row-sliced shard
// stores behind real httptest store nodes, and a proxy routing over them.
type testCluster struct {
	proxy   *Proxy
	topo    *Topology
	servers []*httptest.Server
	rec     *recordingTransport
}

// startCluster slices full into shardCount contiguous row ranges (the
// last one open-ended), serves each slice with a real server.Handler, and
// fronts them with a proxy. wrap, when non-nil, intercepts each shard's
// handler (fault injection).
func startCluster(t *testing.T, full *core.Store, shardCount, workers int, opts Options,
	wrap func(shard int, h http.Handler) http.Handler) *testCluster {
	t.Helper()
	n, _ := full.Dims()
	topo := &Topology{}
	tc := &testCluster{topo: topo}
	for s := 0; s < shardCount; s++ {
		lo, hi := s*n/shardCount, (s+1)*n/shardCount
		slice, err := full.SliceRows(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = server.NewHandler(slice, nil, server.Options{QueryWorkers: workers})
		if wrap != nil {
			h = wrap(s, h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		tc.servers = append(tc.servers, srv)
		shard := Shard{Addr: srv.URL, Lo: lo, Hi: hi}
		if s == shardCount-1 {
			shard.Hi = -1
		}
		topo.Shards = append(topo.Shards, shard)
	}
	tc.rec = &recordingTransport{base: http.DefaultTransport}
	opts.Client = &http.Client{Transport: tc.rec}
	tc.proxy = NewWithTopology(topo, opts)
	return tc
}

func (tc *testCluster) get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	tc.proxy.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func (tc *testCluster) post(t *testing.T, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	tc.proxy.ServeHTTP(w, req)
	return w
}

func decodeBody(t *testing.T, w *httptest.ResponseRecorder, out interface{}) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("undecodable body %q: %v", w.Body.String(), err)
	}
}

// envelope decodes an error response and returns its detail.
func envelope(t *testing.T, w *httptest.ResponseRecorder) api.ErrorDetail {
	t.Helper()
	var env api.ErrorEnvelope
	decodeBody(t, w, &env)
	if env.Error.Code == "" {
		t.Fatalf("response %d has no error envelope: %s", w.Code, w.Body.String())
	}
	return env.Error
}

// --- The tentpole invariant: scatter/gather ≡ single node -------------------

// TestClusterAggregatesBitIdentical is the distributed tier's core claim:
// for every aggregate, every selection shape, shard counts {1, 2, 4} and
// per-shard worker counts {1, 3, 8}, the proxy's scattered/merged value is
// bit-identical to a single node evaluating the unsplit selection — and
// the proxy's X-Cost-Disk-Accesses header equals the sum of the disk
// accesses the store nodes reported.
func TestClusterAggregatesBitIdentical(t *testing.T) {
	x := phoneMatrix(t, 80, 60)
	full := compressStore(t, x)
	n, m := full.Dims()

	sels := []struct{ rows, cols string }{
		{"", ""},
		{"3,9:40,77", "0:13,40"},
		{"5,5,10:20", ""},
		{"0:80", "7"},
	}
	aggs := []string{"sum", "avg", "stddev", "min", "max", "count"}

	// Reference: the unsplit store, serial evaluation.
	want := make(map[string]uint64)
	for _, sel := range sels {
		rows, err := query.ParseIndexSpec(sel.rows, n)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := query.ParseIndexSpec(sel.cols, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range aggs {
			agg, err := query.ParseAggregate(f)
			if err != nil {
				t.Fatal(err)
			}
			v, err := query.EvaluateOpts(full, agg, query.Selection{Rows: rows, Cols: cols},
				query.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			want[f+"|"+sel.rows+"|"+sel.cols] = math.Float64bits(v)
		}
	}

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				tc := startCluster(t, full, shards, workers, Options{}, nil)
				var batch api.BatchAggregateRequest
				var batchKeys []string
				for _, sel := range sels {
					for _, f := range aggs {
						key := f + "|" + sel.rows + "|" + sel.cols
						tc.rec.disk.Store(0)
						w := tc.get(t, "/v1/agg?f="+f+
							"&rows="+url.QueryEscape(sel.rows)+"&cols="+url.QueryEscape(sel.cols))
						if w.Code != http.StatusOK {
							t.Fatalf("%s: status %d: %s", key, w.Code, w.Body.String())
						}
						var resp api.AggregateResponse
						decodeBody(t, w, &resp)
						got := math.Float64bits(api.NumValue(resp.Value, resp.Nonfinite))
						if got != want[key] {
							t.Errorf("%s: proxy %x != single-node %x", key, got, want[key])
						}
						// Ledger across the hop: the proxy's disk-access header
						// must be exactly the sum of what the shards reported.
						hdr, err := strconv.ParseInt(w.Header().Get(trace.HeaderDiskAccesses), 10, 64)
						if err != nil {
							t.Fatalf("%s: bad cost header: %v", key, err)
						}
						if hdr != tc.rec.disk.Load() {
							t.Errorf("%s: proxy ledger %d != Σ shard ledgers %d",
								key, hdr, tc.rec.disk.Load())
						}
						batch.Queries = append(batch.Queries,
							api.AggregateRequest{F: f, Rows: sel.rows, Cols: sel.cols})
						batchKeys = append(batchKeys, key)
					}
				}
				// The whole grid again as one scattered batch (scan-sharing on
				// the store nodes), still bit-identical per item.
				raw, _ := json.Marshal(batch)
				w := tc.post(t, "/v1/aggregate/batch", string(raw))
				if w.Code != http.StatusOK {
					t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
				}
				var bresp api.BatchAggregateResponse
				decodeBody(t, w, &bresp)
				if bresp.Errors || len(bresp.Items) != len(batchKeys) {
					t.Fatalf("batch errors=%v items=%d want %d", bresp.Errors, len(bresp.Items), len(batchKeys))
				}
				for k, item := range bresp.Items {
					got := math.Float64bits(api.NumValue(item.Value, item.Nonfinite))
					if got != want[batchKeys[k]] {
						t.Errorf("batch %s: proxy %x != single-node %x", batchKeys[k], got, want[batchKeys[k]])
					}
				}
			})
		}
	}
}

// TestClusterPointReads pins routed /v1/cell, /v1/row, /v1/rows and
// /v1/cells: values bit-identical to the unsplit store, indices global on
// the wire, request order preserved across the shard fan-out.
func TestClusterPointReads(t *testing.T) {
	x := phoneMatrix(t, 64, 20)
	full := compressStore(t, x)
	n, m := full.Dims()
	tc := startCluster(t, full, 4, 1, Options{}, nil)

	for _, i := range []int{0, 15, 16, 47, 48, n - 1} {
		j := (i * 7) % m
		w := tc.get(t, fmt.Sprintf("/v1/cell?i=%d&j=%d", i, j))
		if w.Code != http.StatusOK {
			t.Fatalf("cell %d:%d status %d: %s", i, j, w.Code, w.Body.String())
		}
		var cell api.CellResponse
		decodeBody(t, w, &cell)
		if cell.I != i || cell.J != j {
			t.Fatalf("cell echoed (%d,%d), want global (%d,%d)", cell.I, cell.J, i, j)
		}
		wantV, err := full.Cell(i, j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(api.NumValue(cell.Value, cell.Nonfinite)) != math.Float64bits(wantV) {
			t.Errorf("cell (%d,%d) differs from unsplit store", i, j)
		}
	}

	// Batched cells in deliberately shard-interleaved order, with a dup.
	coords := [][2]int{{50, 1}, {2, 3}, {17, 0}, {2, 3}, {63, 19}, {33, 5}}
	var spec []string
	for _, c := range coords {
		spec = append(spec, fmt.Sprintf("%d:%d", c[0], c[1]))
	}
	w := tc.get(t, "/v1/cells?at="+strings.Join(spec, ","))
	if w.Code != http.StatusOK {
		t.Fatalf("cells status %d: %s", w.Code, w.Body.String())
	}
	var cells api.CellsResponse
	decodeBody(t, w, &cells)
	if cells.Count != len(coords) {
		t.Fatalf("cells count %d, want %d", cells.Count, len(coords))
	}
	for k, c := range coords {
		got := cells.Cells[k]
		if got.I != c[0] || got.J != c[1] {
			t.Fatalf("cells[%d] = (%d,%d), want (%d,%d) (order must survive the fan-out)",
				k, got.I, got.J, c[0], c[1])
		}
		wantV, _ := full.Cell(c[0], c[1])
		if math.Float64bits(api.NumValue(got.Value, got.Nonfinite)) != math.Float64bits(wantV) {
			t.Errorf("cells[%d] value differs", k)
		}
	}

	// Batched rows spanning every shard, order preserved, values exact.
	w = tc.get(t, "/v1/rows?i="+url.QueryEscape("60,0:4,30"))
	if w.Code != http.StatusOK {
		t.Fatalf("rows status %d: %s", w.Code, w.Body.String())
	}
	var rows api.RowsResponse
	decodeBody(t, w, &rows)
	wantOrder := []int{60, 0, 1, 2, 3, 30}
	if rows.Count != len(wantOrder) {
		t.Fatalf("rows count %d, want %d", rows.Count, len(wantOrder))
	}
	for k, i := range wantOrder {
		if rows.Rows[k].I != i {
			t.Fatalf("rows[%d].i = %d, want %d", k, rows.Rows[k].I, i)
		}
		wantRow, err := full.Row(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range rows.Rows[k].Values {
			if math.Float64bits(api.NumValue(v, "")) != math.Float64bits(wantRow[j]) {
				t.Fatalf("rows[%d] col %d differs", k, j)
			}
		}
	}

	// Out-of-range rows are typed 400s at the proxy (no open shard here is
	// consulted for j; the column bound comes from the owning shard).
	w = tc.get(t, "/v1/cell?i=-1&j=0")
	if d := envelope(t, w); w.Code != http.StatusBadRequest || d.Code != api.CodeOutOfRange {
		t.Fatalf("negative row: status %d code %q", w.Code, d.Code)
	}
	// Label addressing is a store-node feature; the proxy refuses clearly.
	w = tc.get(t, "/v1/cell?row=a&col=b")
	if d := envelope(t, w); w.Code != http.StatusBadRequest || d.Code != api.CodeBadRequest {
		t.Fatalf("label cell: status %d code %q", w.Code, d.Code)
	}
}

// --- Fault injection ---------------------------------------------------------

// TestClusterDeadShard kills one store node and pins the partial-failure
// contract: scattered aggregates fail with a typed 503 naming the dead
// shard, point reads to live shards keep answering, and nothing hangs.
func TestClusterDeadShard(t *testing.T) {
	x := phoneMatrix(t, 40, 16)
	full := compressStore(t, x)
	tc := startCluster(t, full, 2, 1, Options{Timeout: 2 * time.Second}, nil)
	// Warm the dims cache while both shards are alive, then kill shard 1.
	if w := tc.get(t, "/v1/agg?f=sum"); w.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d %s", w.Code, w.Body.String())
	}
	tc.servers[1].Close()

	start := time.Now()
	w := tc.get(t, "/v1/agg?f=sum")
	elapsed := time.Since(start)
	d := envelope(t, w)
	if w.Code != http.StatusServiceUnavailable || d.Code != api.CodeUnavailable {
		t.Fatalf("dead shard: status %d code %q body %s", w.Code, d.Code, w.Body.String())
	}
	if len(d.Shards) != 1 || d.Shards[0].Shard != 1 {
		t.Fatalf("error detail should name shard 1, got %+v", d.Shards)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("dead-shard failure took %v; must resolve within the shard timeout", elapsed)
	}

	// The batch endpoint fails the same way (one dead shard → 503, not a
	// silent partial result).
	w = tc.post(t, "/v1/aggregate/batch", `{"queries":[{"f":"sum"}]}`)
	if d := envelope(t, w); w.Code != http.StatusServiceUnavailable || d.Code != api.CodeUnavailable {
		t.Fatalf("batch over dead shard: status %d code %q", w.Code, d.Code)
	}

	// Rows owned by the live shard still serve.
	w = tc.get(t, "/v1/cell?i=1&j=1")
	if w.Code != http.StatusOK {
		t.Fatalf("live-shard read failed: %d %s", w.Code, w.Body.String())
	}
	// Rows owned by the dead shard are a typed 503 naming it.
	w = tc.get(t, "/v1/cell?i=30&j=1")
	if d := envelope(t, w); w.Code != http.StatusServiceUnavailable || len(d.Shards) != 1 {
		t.Fatalf("dead-shard read: status %d detail %+v", w.Code, d.Shards)
	}

	// Health degrades but keeps answering.
	w = tc.get(t, "/v1/healthz")
	var hz api.HealthzResponse
	decodeBody(t, w, &hz)
	if w.Code != http.StatusOK || hz.Status != "degraded" || hz.Shards[1].Healthy {
		t.Fatalf("healthz after kill: %d %+v", w.Code, hz)
	}
}

// TestClusterStalledShard stalls (rather than kills) a store node
// mid-scatter: the per-shard timeout must convert the hang into a typed
// 503 within the deadline.
func TestClusterStalledShard(t *testing.T) {
	x := phoneMatrix(t, 40, 16)
	full := compressStore(t, x)
	stall := func(shard int, h http.Handler) http.Handler {
		if shard != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/aggregate" {
				// Drain the body so the server's disconnect detection runs
				// and the proxy's cancel unblocks the stall promptly.
				io.Copy(io.Discard, r.Body)
				select {
				case <-r.Context().Done():
					return
				case <-time.After(10 * time.Second):
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	tc := startCluster(t, full, 2, 1, Options{Timeout: 300 * time.Millisecond}, stall)

	start := time.Now()
	w := tc.get(t, "/v1/agg?f=avg")
	elapsed := time.Since(start)
	d := envelope(t, w)
	if w.Code != http.StatusServiceUnavailable || d.Code != api.CodeUnavailable {
		t.Fatalf("stalled shard: status %d code %q", w.Code, d.Code)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled shard took %v; the timeout must bound it", elapsed)
	}
}

// TestClusterHedgedRetry stalls only the FIRST point read against one
// shard: the hedge fires after HedgeAfter, the second attempt answers
// fast, and the client sees a prompt 200 — the recovery path for
// idempotent reads on a transiently slow shard.
func TestClusterHedgedRetry(t *testing.T) {
	x := phoneMatrix(t, 40, 16)
	full := compressStore(t, x)
	var calls atomic.Int32
	slowOnce := func(shard int, h http.Handler) http.Handler {
		if shard != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cell" && calls.Add(1) == 1 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(5 * time.Second):
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	tc := startCluster(t, full, 2, 1,
		Options{Timeout: 10 * time.Second, HedgeAfter: 100 * time.Millisecond}, slowOnce)

	start := time.Now()
	w := tc.get(t, "/v1/cell?i=2&j=3")
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("hedged read failed: %d %s", w.Code, w.Body.String())
	}
	var cell api.CellResponse
	decodeBody(t, w, &cell)
	wantV, _ := full.Cell(2, 3)
	if math.Float64bits(api.NumValue(cell.Value, cell.Nonfinite)) != math.Float64bits(wantV) {
		t.Fatal("hedged read returned a wrong value")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("hedged read took %v; the hedge should have recovered it promptly", elapsed)
	}
	if got := tc.proxy.shardsNow()[0].hedges.Load(); got < 1 {
		t.Fatalf("hedges counter = %d, want ≥ 1", got)
	}
}

// --- Writes through the proxy ------------------------------------------------

// TestClusterBulkAppend routes /v1/bulk to the open-ended shard, re-maps
// the assigned rows to global indices, and the appended rows immediately
// serve — reads and aggregates — through the proxy.
func TestClusterBulkAppend(t *testing.T) {
	x := phoneMatrix(t, 40, 16)
	full := compressStore(t, x)
	n, m := full.Dims()
	lo := n / 2
	closedSlice, err := full.SliceRows(0, lo)
	if err != nil {
		t.Fatal(err)
	}
	openSlice, err := full.SliceRows(lo, n)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := ingest.Open(openSlice, nil, filepath.Join(t.TempDir(), "shard1.wal"), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	s0 := httptest.NewServer(server.NewHandler(closedSlice, nil, server.Options{}))
	defer s0.Close()
	s1 := httptest.NewServer(server.NewHandler(tiered, nil, server.Options{}))
	defer s1.Close()
	topo := &Topology{Shards: []Shard{
		{Addr: s0.URL, Lo: 0, Hi: lo},
		{Addr: s1.URL, Lo: lo, Hi: -1},
	}}
	tc := &testCluster{topo: topo, rec: &recordingTransport{base: http.DefaultTransport}}
	tc.proxy = NewWithTopology(topo, Options{Client: &http.Client{Transport: tc.rec}})

	doc := func(seed float64) string {
		vals := make([]string, m)
		for j := range vals {
			vals[j] = fmt.Sprintf("%g", seed+float64(j)/3)
		}
		return `{"values":[` + strings.Join(vals, ",") + `]}`
	}
	w := tc.post(t, "/v1/bulk", doc(100)+"\n"+doc(200)+"\n")
	if w.Code != http.StatusOK {
		t.Fatalf("bulk status %d: %s", w.Code, w.Body.String())
	}
	var bulk api.BulkResponse
	decodeBody(t, w, &bulk)
	if bulk.Errors || len(bulk.Items) != 2 {
		t.Fatalf("bulk response: %+v", bulk)
	}
	for k, item := range bulk.Items {
		if item.Create.Status != http.StatusCreated || item.Create.Row != n+k {
			t.Fatalf("item %d: status %d row %d, want 201 row %d (global)",
				k, item.Create.Status, item.Create.Row, n+k)
		}
	}

	// The appended row serves exactly through the proxy (hot segment).
	w = tc.get(t, fmt.Sprintf("/v1/cell?i=%d&j=4", n))
	if w.Code != http.StatusOK {
		t.Fatalf("appended cell: %d %s", w.Code, w.Body.String())
	}
	var cell api.CellResponse
	decodeBody(t, w, &cell)
	if got := api.NumValue(cell.Value, cell.Nonfinite); got != 100+4.0/3 {
		t.Fatalf("appended cell = %v, want %v", got, 100+4.0/3)
	}

	// Aggregates see the appended rows after the dims cache invalidation:
	// proxy result over the new row == the owning node evaluating locally.
	wantV, err := query.EvaluateOpts(tiered, query.Sum,
		query.Selection{Rows: []int{n - lo}, Cols: query.All(m)}, query.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w = tc.get(t, fmt.Sprintf("/v1/agg?f=sum&rows=%d", n))
	if w.Code != http.StatusOK {
		t.Fatalf("aggregate over appended row: %d %s", w.Code, w.Body.String())
	}
	var resp api.AggregateResponse
	decodeBody(t, w, &resp)
	if math.Float64bits(api.NumValue(resp.Value, resp.Nonfinite)) != math.Float64bits(wantV) {
		t.Fatal("aggregate over appended row differs from the owning node")
	}

	// A topology with no open-ended range cannot absorb appends: typed 403.
	closedTopo := &Topology{Shards: []Shard{{Addr: s0.URL, Lo: 0, Hi: lo}}}
	p2 := NewWithTopology(closedTopo, Options{})
	w2 := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/bulk", strings.NewReader(doc(1)))
	p2.ServeHTTP(w2, req)
	var env api.ErrorEnvelope
	if err := json.Unmarshal(w2.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if w2.Code != http.StatusForbidden || env.Error.Code != api.CodeNotWritable {
		t.Fatalf("closed topology bulk: status %d code %q", w2.Code, env.Error.Code)
	}
}

// --- Composition endpoints ---------------------------------------------------

// TestClusterInfoAndMetrics pins the composed /v1/info (global dims,
// summed stored numbers, the shard map) and the per-shard gauges on
// /v1/metrics.
func TestClusterInfoAndMetrics(t *testing.T) {
	x := phoneMatrix(t, 48, 20)
	full := compressStore(t, x)
	n, m := full.Dims()
	tc := startCluster(t, full, 3, 1, Options{}, nil)

	w := tc.get(t, "/v1/info")
	if w.Code != http.StatusOK {
		t.Fatalf("info status %d: %s", w.Code, w.Body.String())
	}
	var info api.InfoResponse
	decodeBody(t, w, &info)
	if info.Rows != n || info.Cols != m {
		t.Fatalf("info dims %dx%d, want %dx%d", info.Rows, info.Cols, n, m)
	}
	if len(info.Shards) != 3 {
		t.Fatalf("info shards %d, want 3", len(info.Shards))
	}
	if info.Shards[2].Hi != -1 {
		t.Fatal("last shard should be open-ended in the composed info")
	}
	var rows int
	for _, sh := range info.Shards {
		rows += sh.Rows
	}
	if rows != n {
		t.Fatalf("shard rows sum to %d, want %d", rows, n)
	}

	// Drive a request, then check the per-shard gauge block.
	if w := tc.get(t, "/v1/agg?f=sum"); w.Code != http.StatusOK {
		t.Fatal("aggregate for metrics warmup failed")
	}
	w = tc.get(t, "/v1/metrics")
	var body struct {
		Shards []struct {
			Shard    int     `json:"shard"`
			Healthy  bool    `json:"healthy"`
			Requests int64   `json:"requests_total"`
			Hedges   int64   `json:"hedges_total"`
			P99Ms    float64 `json:"p99_ms"`
		} `json:"shards"`
	}
	decodeBody(t, w, &body)
	if len(body.Shards) != 3 {
		t.Fatalf("metrics shards %d, want 3", len(body.Shards))
	}
	for s, sh := range body.Shards {
		if !sh.Healthy || sh.Requests == 0 {
			t.Fatalf("shard %d gauges: %+v (want healthy with traffic)", s, sh)
		}
	}
}

// --- Topology mechanics ------------------------------------------------------

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{},
		{Shards: []Shard{{Addr: "http://a", Lo: 1, Hi: 4}}},                                    // gap at 0
		{Shards: []Shard{{Addr: "http://a", Lo: 0, Hi: 4}, {Addr: "http://b", Lo: 5, Hi: 9}}},  // gap
		{Shards: []Shard{{Addr: "http://a", Lo: 0, Hi: 4}, {Addr: "http://b", Lo: 3, Hi: 9}}},  // overlap
		{Shards: []Shard{{Addr: "http://a", Lo: 0, Hi: -1}, {Addr: "http://b", Lo: 4, Hi: 9}}}, // open not last
		{Shards: []Shard{{Addr: "http://a", Lo: 0, Hi: 0}}},                                    // empty range
		{Shards: []Shard{{Addr: "", Lo: 0, Hi: 4}}},                                            // no addr
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("bad topology %d validated", i)
		}
	}
	good := Topology{Shards: []Shard{
		{Addr: "http://a", Lo: 0, Hi: 4},
		{Addr: "http://b", Lo: 4, Hi: -1},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct{ row, shard int }{
		{0, 0}, {3, 0}, {4, 1}, {1000, 1}, {-1, -1},
	} {
		if got := good.Locate(tt.row); got != tt.shard {
			t.Errorf("Locate(%d) = %d, want %d", tt.row, got, tt.shard)
		}
	}
	if good.OpenShard() != 1 {
		t.Error("OpenShard should find the trailing open range")
	}
}

// TestProxyReloadFile pins SIGHUP semantics: the topology file re-reads
// and swaps atomically; a broken file keeps the old topology serving.
func TestProxyReloadFile(t *testing.T) {
	x := phoneMatrix(t, 40, 16)
	full := compressStore(t, x)
	srv := httptest.NewServer(server.NewHandler(full, nil, server.Options{}))
	defer srv.Close()

	dir := t.TempDir()
	path := filepath.Join(dir, "topology.json")
	write := func(s string) {
		t.Helper()
		if err := writeFile(path, s); err != nil {
			t.Fatal(err)
		}
	}
	write(fmt.Sprintf(`{"shards": [{"addr": %q, "lo": 0, "hi": -1}]}`, srv.URL))
	p, err := New(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if topo, _ := p.view(); len(topo.Shards) != 1 {
		t.Fatal("initial topology should have 1 shard")
	}
	// Valid rewrite: swap in a 2-shard map.
	write(fmt.Sprintf(`{"shards": [{"addr": %q, "lo": 0, "hi": 16}, {"addr": %q, "lo": 16, "hi": -1}]}`,
		srv.URL, srv.URL))
	if err := p.ReloadFile(); err != nil {
		t.Fatal(err)
	}
	if topo, _ := p.view(); len(topo.Shards) != 2 {
		t.Fatal("reload did not swap the topology")
	}
	// Broken rewrite: reload fails, the 2-shard map keeps serving.
	write(`{"shards": [{"addr": "http://x", "lo": 5, "hi": 2}]}`)
	if err := p.ReloadFile(); err == nil {
		t.Fatal("invalid topology file should fail to reload")
	}
	if topo, _ := p.view(); len(topo.Shards) != 2 {
		t.Fatal("failed reload must keep the previous topology")
	}
}

// TestRenderSpec pins the fragment re-rendering round trip: parse ∘
// render is the identity on the multiset, order included.
func TestRenderSpec(t *testing.T) {
	cases := [][]int{
		{0},
		{0, 1, 2, 3},
		{5, 5, 5},
		{3, 9, 10, 11, 40, 2, 2, 0, 1},
		{7, 6, 5},
	}
	for _, idx := range cases {
		spec := renderSpec(idx)
		back, err := query.ParseIndexSpec(spec, 1000)
		if err != nil {
			t.Fatalf("render %v -> %q failed to parse: %v", idx, spec, err)
		}
		if len(back) != len(idx) {
			t.Fatalf("round trip of %v via %q: %v", idx, spec, back)
		}
		for k := range idx {
			if back[k] != idx[k] {
				t.Fatalf("round trip of %v via %q: %v", idx, spec, back)
			}
		}
	}
}

// writeFile is a tiny helper for the reload tests.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
