package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"seqstore/internal/api"
	"seqstore/internal/telemetry"
	"seqstore/internal/trace"
)

// Proxy batch limits mirror the single-node server's defaults, so a
// request the proxy accepts is one every store node accepts too.
const (
	defaultMaxBatchCells   = 10000
	defaultMaxBatchRows    = 1024
	defaultMaxBatchQueries = 64
)

// DefaultTimeout bounds one store-node exchange; a shard that stays silent
// this long is reported unavailable, never waited on indefinitely.
const DefaultTimeout = 5 * time.Second

// Options configures a Proxy.
type Options struct {
	// Timeout is the per-shard request deadline; 0 means DefaultTimeout.
	Timeout time.Duration
	// HedgeAfter hedges idempotent point reads: when a store node has not
	// answered within this duration, a second identical request races the
	// first and the earlier success wins. 0 disables hedging.
	HedgeAfter time.Duration
	// MaxBatchCells/MaxBatchRows/MaxBatchQueries bound one batched
	// request, mirroring the store nodes' limits; 0 selects the defaults.
	MaxBatchCells   int
	MaxBatchRows    int
	MaxBatchQueries int
	// Logger receives the structured request log; nil silences it.
	Logger *slog.Logger
	// SlowQuery is the slow-request threshold: requests at least this slow
	// log at Warn with the full cost ledger, the trace id and the winning
	// shard set, so a p99 outlier is greppable end to end. 0 disables.
	SlowQuery time.Duration
	// TraceBuffer is the /v1/debug/traces ring capacity; 0 selects
	// trace.DefaultRingSize.
	TraceBuffer int
	// SLOObjective is the per-endpoint latency objective surfaced through
	// /v1/metrics and /v1/healthz; 0 disables SLO reporting. SLOTarget is
	// the fraction of requests that must meet the objective; 0 selects 0.99.
	SLOObjective time.Duration
	SLOTarget    float64
	// Client overrides the HTTP client used for store-node requests
	// (tests inject httptest transports); nil builds a pooled default.
	Client *http.Client
}

// dims is the proxy's cached view of the global matrix shape, assembled
// from per-shard /v1/info responses. It goes stale when rows are appended
// through the proxy (or the topology is swapped) and is refreshed lazily.
type dims struct {
	n, m  int
	valid bool
}

// Proxy is the stateless distributed front door: it serves the same typed
// /v1 contract as a store node, owns no data, and holds only the topology
// (which rows live where) plus soft state (health, cached dimensions). Any
// number of identical proxies can front the same store nodes.
type Proxy struct {
	opts Options
	path string // topology file; "" when built from an in-memory Topology

	hc   *http.Client
	tel  *telemetry.Registry
	mux  *http.ServeMux
	log  *slog.Logger
	ring *trace.Ring

	mu     sync.RWMutex
	topo   *Topology
	shards []*shardClient
	dims   dims
}

// New builds a proxy over a topology file. The file is re-read (and the
// shard set swapped atomically) by ReloadFile — cmd/seqproxy wires that to
// SIGHUP.
func New(path string, opts Options) (*Proxy, error) {
	topo, err := LoadTopology(path)
	if err != nil {
		return nil, err
	}
	p := NewWithTopology(topo, opts)
	p.path = path
	return p, nil
}

// NewWithTopology builds a proxy over an already validated topology; used
// directly by tests and the in-process experiments harness.
func NewWithTopology(topo *Topology, opts Options) *Proxy {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxBatchCells <= 0 {
		opts.MaxBatchCells = defaultMaxBatchCells
	}
	if opts.MaxBatchRows <= 0 {
		opts.MaxBatchRows = defaultMaxBatchRows
	}
	if opts.MaxBatchQueries <= 0 {
		opts.MaxBatchQueries = defaultMaxBatchQueries
	}
	p := &Proxy{
		opts: opts,
		hc:   opts.Client,
		tel:  telemetry.NewRegistry(),
		mux:  http.NewServeMux(),
		log:  opts.Logger,
		ring: trace.NewRing(opts.TraceBuffer),
	}
	if p.log == nil {
		p.log = slog.New(slog.DiscardHandler)
	}
	if opts.SLOObjective > 0 {
		target := opts.SLOTarget
		if target <= 0 {
			target = 0.99
		}
		p.tel.SetSLO(float64(opts.SLOObjective)/float64(time.Millisecond), target)
	}
	if p.hc == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 32
		p.hc = &http.Client{Transport: t}
	}
	p.install(topo)

	p.handle("/v1/info", p.handleInfo)
	p.handle("/v1/cell", p.handleCell)
	p.handle("/v1/cells", p.handleCells)
	p.handle("/v1/row", p.handleRow)
	p.handle("/v1/rows", p.handleRows)
	p.handle("/v1/agg", deprecatedBy("/v1/aggregate", p.handleAgg))
	p.handle("/v1/metrics", p.handleMetrics)
	p.handle("/v1/healthz", p.handleHealthz)
	p.handle(tracesPattern, p.handleTraces)
	p.handleMethod("/v1/bulk", http.MethodPost, p.handleBulk)
	p.handleMethod("/v1/aggregate", http.MethodPost, p.handleAggregate)
	p.handleMethod("/v1/aggregate/batch", http.MethodPost, p.handleAggBatch)
	return p
}

// install swaps in a topology and a fresh shard-client set, invalidating
// the cached dimensions. In-flight requests keep the clients they already
// grabbed, so a reload never disturbs them.
func (p *Proxy) install(topo *Topology) {
	shards := make([]*shardClient, len(topo.Shards))
	for s, sh := range topo.Shards {
		shards[s] = newShardClient(s, sh, p.hc, p.opts.Timeout, p.opts.HedgeAfter)
	}
	p.mu.Lock()
	p.topo, p.shards, p.dims = topo, shards, dims{}
	p.mu.Unlock()
}

// Reload swaps the topology (tests and embedders); see ReloadFile for the
// file-backed path.
func (p *Proxy) Reload(topo *Topology) error {
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("cluster: reload: %w", err)
	}
	p.install(topo)
	return nil
}

// ReloadFile re-reads the topology file the proxy was built from. A
// failed load leaves the current topology serving.
func (p *Proxy) ReloadFile() error {
	if p.path == "" {
		return fmt.Errorf("cluster: proxy has no topology file to reload")
	}
	topo, err := LoadTopology(p.path)
	if err != nil {
		return err
	}
	p.install(topo)
	return nil
}

// view snapshots the current topology and shard clients.
func (p *Proxy) view() (*Topology, []*shardClient) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.topo, p.shards
}

// Telemetry exposes the proxy's metrics registry.
func (p *Proxy) Telemetry() *telemetry.Registry { return p.tel }

// ServeHTTP dispatches to the instrumented endpoint handlers.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mux.ServeHTTP(w, r)
}

// tracesPattern mirrors the store node's trace-ring endpoint.
const tracesPattern = "/v1/debug/traces"

// deprecatedBy mirrors the store node's deprecation idiom: the endpoint
// still serves, advertising its successor.
func deprecatedBy(successor string, fn http.HandlerFunc) http.HandlerFunc {
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", link)
		fn(w, r)
	}
}

func (p *Proxy) handle(pattern string, fn http.HandlerFunc) {
	p.handleMethod(pattern, http.MethodGet, fn)
}

// handleMethod is the proxy's request middleware, the same shape as the
// store node's: count, time, trace. The request's trace ledger is what the
// shard clients fold remote cost snapshots into, so the X-Cost-* headers
// this hook emits are the exact sum of the per-shard ledgers.
func (p *Proxy) handleMethod(pattern, method string, fn http.HandlerFunc) {
	ep := p.tel.Endpoint(pattern)
	p.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep.Requests.Inc()

		id := trace.SanitizeRequestID(r.Header.Get(trace.HeaderRequestID))
		if id == "" {
			id = trace.NewRequestID()
		}
		tr := trace.New(id, pattern)
		logger := p.log.With("request_id", id)
		ctx := trace.WithLogger(trace.NewContext(r.Context(), tr), logger)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		sw.beforeHeader = func() {
			hdr := sw.Header()
			hdr.Set(trace.HeaderRequestID, id)
			trace.EncodeCostHeaders(hdr, tr.Ledger.Snapshot())
		}

		if r.Method != method {
			sw.Header().Set("Allow", method)
			api.WriteErrorDetail(sw, http.StatusMethodNotAllowed, api.ErrorDetail{
				Code:      api.CodeMethodNotAllowed,
				Message:   fmt.Sprintf("method %s not allowed; use %s", r.Method, method),
				RequestID: id,
			})
		} else {
			fn(sw, r)
		}

		elapsed := time.Since(start)
		ep.Latency.Observe(elapsed)
		if sw.status >= http.StatusBadRequest {
			ep.Errors.Inc()
		}
		snap := tr.Finish(sw.status)
		if pattern != tracesPattern {
			p.ring.Put(snap)
		}
		p.logRequest(logger, pattern, snap, elapsed)
	})
}

// logRequest mirrors the store node's request log: Debug normally, Warn
// with the full cost ledger above the slow-query threshold, Error on 5xx.
// The proxy's slow-query line additionally names the winning shard set, so
// an end-to-end outlier is greppable by trace id across every process it
// touched.
func (p *Proxy) logRequest(logger *slog.Logger, pattern string, snap *trace.TraceSnapshot, elapsed time.Duration) {
	slow := p.opts.SlowQuery > 0 && elapsed >= p.opts.SlowQuery
	level := slog.LevelDebug
	msg := "request"
	switch {
	case snap.Status >= http.StatusInternalServerError:
		level = slog.LevelError
		msg = "request failed"
	case slow:
		level = slog.LevelWarn
		msg = "slow query"
	}
	if !logger.Enabled(context.Background(), level) {
		return
	}
	args := []any{
		"endpoint", pattern,
		"status", snap.Status,
		"duration_ms", float64(elapsed.Microseconds()) / 1e3,
		"trace_id", snap.TraceID,
	}
	if slow || level >= slog.LevelWarn {
		c := snap.Cost
		args = append(args,
			"shards", winningShards(snap),
			"disk_accesses", c.DiskAccesses,
			"rows_read", c.RowsRead,
			"pages_touched", c.PagesTouched,
			"cache_hits", c.CacheHits,
			"deltas_probed", c.DeltasProbed,
		)
	}
	logger.Log(context.Background(), level, msg, args...)
}

// winningShards extracts the distinct shard numbers whose attempts won, in
// ascending order — the set of store nodes whose responses actually formed
// the answer.
func winningShards(snap *trace.TraceSnapshot) []int {
	seen := map[int]bool{}
	for _, sp := range snap.Spans {
		shard, won := -1, false
		for _, a := range sp.Attrs {
			switch a.Key {
			case "shard":
				if v, ok := a.Value.(int); ok {
					shard = v
				}
			case "outcome":
				won = a.Value == "winner"
			}
		}
		if won && shard >= 0 {
			seen[shard] = true
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// statusWriter records the committed status and runs the beforeHeader hook
// once, immediately before the status line — identical contract to the
// store node's.
type statusWriter struct {
	http.ResponseWriter
	status       int
	beforeHeader func()
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		if w.beforeHeader != nil {
			w.beforeHeader()
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// --- Scatter plumbing --------------------------------------------------------

// shardFailure is one store node's failure inside a scattered request.
type shardFailure struct {
	shard int
	addr  string
	err   error
}

// scatter runs fn(s) concurrently for the selected shard indices and
// returns the failures in ascending shard order (deterministic error
// bodies). fn receives the shard client and must do its own result
// placement — results are positional, so no coordination is needed beyond
// the wait.
func scatter(shards []*shardClient, idx []int, fn func(c *shardClient) error) []shardFailure {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []shardFailure
	)
	for _, s := range idx {
		c := shards[s]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(c); err != nil {
				mu.Lock()
				errs = append(errs, shardFailure{shard: c.shard, addr: c.addr, err: err})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(errs, func(a, b int) bool { return errs[a].shard < errs[b].shard })
	return errs
}

// allShards returns [0, 1, …, len(shards)−1].
func allShards(shards []*shardClient) []int {
	idx := make([]int, len(shards))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// failScatter writes the error envelope for a scattered request that
// could not complete. Transport-level failures (dead or stalled shards)
// dominate: they yield 503 unavailable with the failing shards detailed.
// When every failure is a remote HTTP error — a store node rejected its
// fragment — the first shard's verdict is propagated verbatim, because the
// shards share one validation and the others would have said the same.
func (p *Proxy) failScatter(w http.ResponseWriter, r *http.Request, fails []shardFailure) {
	details := make([]api.ShardError, len(fails))
	transport := false
	for i, f := range fails {
		details[i] = api.ShardError{Shard: f.shard, Addr: f.addr, Message: f.err.Error()}
		if _, ok := asRemote(f.err); !ok {
			transport = true
		}
	}
	if !transport {
		if re, ok := asRemote(fails[0].err); ok {
			api.WriteErrorDetail(w, re.status, api.ErrorDetail{
				Code:      re.code,
				Message:   re.msg,
				RequestID: trace.FromContext(r.Context()).ID(),
				Shards:    details,
			})
			return
		}
	}
	total := len(p.shardsNow())
	api.WriteErrorDetail(w, http.StatusServiceUnavailable, api.ErrorDetail{
		Code:      api.CodeUnavailable,
		Message:   fmt.Sprintf("%d of %d shards unavailable", len(fails), total),
		RequestID: trace.FromContext(r.Context()).ID(),
		Shards:    details,
	})
}

func (p *Proxy) shardsNow() []*shardClient {
	_, shards := p.view()
	return shards
}

// failShard writes the error envelope for a single-shard exchange:
// remote verdicts pass through with their status and code; transport
// failures become 503 unavailable naming the shard.
func (p *Proxy) failShard(w http.ResponseWriter, r *http.Request, c *shardClient, err error) {
	if re, ok := asRemote(err); ok {
		api.WriteErrorDetail(w, re.status, api.ErrorDetail{
			Code:      re.code,
			Message:   re.msg,
			RequestID: trace.FromContext(r.Context()).ID(),
		})
		return
	}
	api.WriteErrorDetail(w, http.StatusServiceUnavailable, api.ErrorDetail{
		Code:      api.CodeUnavailable,
		Message:   err.Error(),
		RequestID: trace.FromContext(r.Context()).ID(),
		Shards:    []api.ShardError{{Shard: c.shard, Addr: c.addr, Message: err.Error()}},
	})
}

// --- Global dimensions -------------------------------------------------------

// globalDims returns the global (n, m), refreshing the cache from the
// shards' /v1/info when stale. The cache invalidates on topology reload
// and on writes through the proxy; rows appended behind the proxy's back
// surface on the next reload or restart.
func (p *Proxy) globalDims(ctx context.Context) (int, int, []shardFailure) {
	p.mu.RLock()
	d, topo, shards := p.dims, p.topo, p.shards
	p.mu.RUnlock()
	if d.valid {
		return d.n, d.m, nil
	}
	infos, fails := p.fetchInfos(ctx, shards)
	if len(fails) > 0 {
		return 0, 0, fails
	}
	n, m, err := composeDims(topo, infos)
	if err != nil {
		return 0, 0, []shardFailure{{shard: -1, addr: "", err: err}}
	}
	p.mu.Lock()
	if p.topo == topo { // don't cache across a concurrent reload
		p.dims = dims{n: n, m: m, valid: true}
	}
	p.mu.Unlock()
	return n, m, nil
}

// fetchInfos gathers every shard's /v1/info concurrently.
func (p *Proxy) fetchInfos(ctx context.Context, shards []*shardClient) ([]api.InfoResponse, []shardFailure) {
	infos := make([]api.InfoResponse, len(shards))
	fails := scatter(shards, allShards(shards), func(c *shardClient) error {
		return c.doJSON(ctx, http.MethodGet, "/v1/info", nil, &infos[c.shard], true)
	})
	if len(fails) > 0 {
		return nil, fails
	}
	return infos, nil
}

// composeDims derives the global shape from per-shard infos, checking
// that the shards actually hold what the topology says they hold: a
// closed range must match its node's row count exactly, column counts
// must agree everywhere. A mismatch means the topology file and the data
// disagree — misrouting territory — so it is an error, not a warning.
func composeDims(topo *Topology, infos []api.InfoResponse) (n, m int, err error) {
	m = infos[0].Cols
	for s, info := range infos {
		sh := topo.Shards[s]
		if info.Cols != m {
			return 0, 0, fmt.Errorf("cluster: shard %d has %d cols, shard 0 has %d", s, info.Cols, m)
		}
		want := sh.Hi - sh.Lo
		if sh.Hi == -1 {
			n = sh.Lo + info.Rows
			continue
		}
		if info.Rows != want {
			return 0, 0, fmt.Errorf("cluster: shard %d holds %d rows, topology assigns [%d, %d)", s, info.Rows, sh.Lo, sh.Hi)
		}
		n = sh.Hi
	}
	return n, m, nil
}

// markDimsStale invalidates the cached global dimensions (rows were
// appended through the proxy).
func (p *Proxy) markDimsStale() {
	p.mu.Lock()
	p.dims.valid = false
	p.mu.Unlock()
}
