package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format 0.0.4) rendered straight from a
// Snapshot, so /v1/metrics?format=prom and the JSON view can never drift:
// both are views of the same struct. Families are prefixed "seqstore_";
// durations are seconds per Prometheus convention (the JSON schema keeps
// milliseconds).

// promEscapeLabel escapes a label value per the exposition format.
func promEscapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promSanitizeName maps an arbitrary metric name onto the Prometheus name
// charset [a-zA-Z0-9_:], replacing anything else with '_'.
func promSanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders s in the Prometheus text exposition format.
// Output is deterministic (families and label values sorted), which is what
// lets the golden-schema test pin it.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}

	bw.printf("# HELP seqstore_uptime_seconds Seconds since the server registry was created.\n")
	bw.printf("# TYPE seqstore_uptime_seconds gauge\n")
	bw.printf("seqstore_uptime_seconds %g\n", s.UptimeSeconds)

	eps := sortedKeys(s.Endpoints)

	bw.printf("# HELP seqstore_requests_total Requests served, by endpoint pattern.\n")
	bw.printf("# TYPE seqstore_requests_total counter\n")
	for _, name := range eps {
		bw.printf("seqstore_requests_total{endpoint=\"%s\"} %d\n",
			promEscapeLabel(name), s.Endpoints[name].Requests)
	}

	bw.printf("# HELP seqstore_request_errors_total Requests answered with status >= 400, by endpoint pattern.\n")
	bw.printf("# TYPE seqstore_request_errors_total counter\n")
	for _, name := range eps {
		bw.printf("seqstore_request_errors_total{endpoint=\"%s\"} %d\n",
			promEscapeLabel(name), s.Endpoints[name].Errors)
	}

	bw.printf("# HELP seqstore_request_duration_seconds Request latency, by endpoint pattern.\n")
	bw.printf("# TYPE seqstore_request_duration_seconds histogram\n")
	for _, name := range eps {
		h := s.Endpoints[name].Latency
		label := promEscapeLabel(name)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			bw.printf("seqstore_request_duration_seconds_bucket{endpoint=\"%s\",le=%q} %d\n",
				label, fmt.Sprintf("%g", b.LeMs/1e3), cum)
		}
		bw.printf("seqstore_request_duration_seconds_bucket{endpoint=\"%s\",le=\"+Inf\"} %d\n", label, h.Count)
		bw.printf("seqstore_request_duration_seconds_sum{endpoint=\"%s\"} %g\n",
			label, h.MeanMs*float64(h.Count)/1e3)
		bw.printf("seqstore_request_duration_seconds_count{endpoint=\"%s\"} %d\n", label, h.Count)
	}

	for _, name := range sortedKeys(s.Counters) {
		fam := "seqstore_" + promSanitizeName(name)
		if !strings.HasSuffix(fam, "_total") {
			fam += "_total"
		}
		bw.printf("# HELP %s Counter %q from the registry.\n", fam, promEscapeLabel(name))
		bw.printf("# TYPE %s counter\n", fam)
		bw.printf("%s %d\n", fam, s.Counters[name])
	}

	for _, name := range sortedKeys(s.Gauges) {
		fam := "seqstore_" + promSanitizeName(name)
		// A registered gauge whose name ends in _total is really a
		// monotonically increasing value sourced from outside the registry
		// (e.g. matio row reads); type it as a counter so scrapers can rate()
		// it.
		typ := "gauge"
		if strings.HasSuffix(fam, "_total") {
			typ = "counter"
		}
		bw.printf("# HELP %s Gauge %q from the registry.\n", fam, promEscapeLabel(name))
		bw.printf("# TYPE %s %s\n", fam, typ)
		bw.printf("%s %g\n", fam, s.Gauges[name])
	}

	if s.SLO != nil {
		bw.printf("# HELP seqstore_slo_objective_seconds The latency objective requests are measured against.\n")
		bw.printf("# TYPE seqstore_slo_objective_seconds gauge\n")
		bw.printf("seqstore_slo_objective_seconds %g\n", s.SLO.ObjectiveMs/1e3)
		bw.printf("# HELP seqstore_slo_target_ratio Fraction of requests that must meet the objective.\n")
		bw.printf("# TYPE seqstore_slo_target_ratio gauge\n")
		bw.printf("seqstore_slo_target_ratio %g\n", s.SLO.Target)
		bw.printf("# HELP seqstore_slo_attainment_ratio Fraction of requests meeting the objective, by endpoint.\n")
		bw.printf("# TYPE seqstore_slo_attainment_ratio gauge\n")
		for _, ep := range s.SLO.Endpoints {
			bw.printf("seqstore_slo_attainment_ratio{endpoint=\"%s\"} %g\n",
				promEscapeLabel(ep.Endpoint), ep.Attainment)
		}
		bw.printf("# HELP seqstore_slo_burn_rate Error-budget burn rate, by endpoint (1.0 = sustainable).\n")
		bw.printf("# TYPE seqstore_slo_burn_rate gauge\n")
		for _, ep := range s.SLO.Endpoints {
			bw.printf("seqstore_slo_burn_rate{endpoint=\"%s\"} %g\n",
				promEscapeLabel(ep.Endpoint), ep.BurnRate)
		}
	}

	bw.printf("# HELP seqstore_go_goroutines Current number of goroutines.\n")
	bw.printf("# TYPE seqstore_go_goroutines gauge\n")
	bw.printf("seqstore_go_goroutines %d\n", s.Runtime.Goroutines)
	bw.printf("# HELP seqstore_go_heap_alloc_bytes Bytes of allocated heap objects.\n")
	bw.printf("# TYPE seqstore_go_heap_alloc_bytes gauge\n")
	bw.printf("seqstore_go_heap_alloc_bytes %d\n", s.Runtime.HeapAllocBytes)
	bw.printf("# HELP seqstore_go_heap_sys_bytes Bytes of heap memory obtained from the OS.\n")
	bw.printf("# TYPE seqstore_go_heap_sys_bytes gauge\n")
	bw.printf("seqstore_go_heap_sys_bytes %d\n", s.Runtime.HeapSysBytes)
	bw.printf("# HELP seqstore_go_gc_runs_total Completed GC cycles.\n")
	bw.printf("# TYPE seqstore_go_gc_runs_total counter\n")
	bw.printf("seqstore_go_gc_runs_total %d\n", s.Runtime.GCRuns)
	bw.printf("# HELP seqstore_go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n")
	bw.printf("# TYPE seqstore_go_gc_pause_seconds_total counter\n")
	bw.printf("seqstore_go_gc_pause_seconds_total %g\n", s.Runtime.GCPauseTotalSecond)

	return bw.err
}

// errWriter latches the first write error so rendering code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
