package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P50Ms != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.MinMs > 1.0+1e-9 || s.MinMs <= 0 {
		t.Errorf("min = %v ms, want ~1", s.MinMs)
	}
	if s.MaxMs < 4.0-1e-9 {
		t.Errorf("max = %v ms, want ~4", s.MaxMs)
	}
	wantMean := (1.0 + 2.0 + 4.0) / 3
	if diff := s.MeanMs - wantMean; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("mean = %v ms, want %v", s.MeanMs, wantMean)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 10 at ~100ms: p50 must sit near 1ms, p99
	// near 100ms (within the 2x bucket resolution).
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P50Ms > 2.0 {
		t.Errorf("p50 = %v ms, want <= 2ms bucket", s.P50Ms)
	}
	if s.P99Ms < 50 || s.P99Ms > 150 {
		t.Errorf("p99 = %v ms, want within 2x of 100ms", s.P99Ms)
	}
	if s.P50Ms > s.P90Ms || s.P90Ms > s.P99Ms {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50Ms, s.P90Ms, s.P99Ms)
	}
}

func TestHistogramZeroDuration(t *testing.T) {
	var h Histogram
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 1 || s.MinMs != 0 || s.MaxMs != 0 {
		t.Fatalf("zero-duration snapshot: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	ep := r.Endpoint("/cell")
	if r.Endpoint("/cell") != ep {
		t.Fatal("Endpoint not stable across calls")
	}
	ep.Requests.Inc()
	ep.Errors.Inc()
	ep.Latency.Observe(time.Millisecond)
	r.Counter("cache_hits").Add(7)

	s := r.Snapshot()
	if s.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", s.UptimeSeconds)
	}
	cell := s.Endpoints["/cell"]
	if cell.Requests != 1 || cell.Errors != 1 || cell.Latency.Count != 1 {
		t.Errorf("endpoint snapshot: %+v", cell)
	}
	if s.Counters["cache_hits"] != 7 {
		t.Errorf("counters: %+v", s.Counters)
	}
	// The snapshot must be JSON-marshalable (it backs /metrics).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestRate(t *testing.T) {
	if Rate(0, 0) != 0 {
		t.Error("Rate(0,0) != 0")
	}
	if got := Rate(3, 1); got != 0.75 {
		t.Errorf("Rate(3,1) = %v", got)
	}
}
