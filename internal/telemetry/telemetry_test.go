package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P50Ms != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.MinMs > 1.0+1e-9 || s.MinMs <= 0 {
		t.Errorf("min = %v ms, want ~1", s.MinMs)
	}
	if s.MaxMs < 4.0-1e-9 {
		t.Errorf("max = %v ms, want ~4", s.MaxMs)
	}
	wantMean := (1.0 + 2.0 + 4.0) / 3
	if diff := s.MeanMs - wantMean; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("mean = %v ms, want %v", s.MeanMs, wantMean)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 10 at ~100ms: p50 must sit near 1ms, p99
	// near 100ms (within the 2x bucket resolution).
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P50Ms > 2.0 {
		t.Errorf("p50 = %v ms, want <= 2ms bucket", s.P50Ms)
	}
	if s.P99Ms < 50 || s.P99Ms > 150 {
		t.Errorf("p99 = %v ms, want within 2x of 100ms", s.P99Ms)
	}
	if s.P50Ms > s.P90Ms || s.P90Ms > s.P99Ms {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50Ms, s.P90Ms, s.P99Ms)
	}
}

func TestHistogramZeroDuration(t *testing.T) {
	var h Histogram
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 1 || s.MinMs != 0 || s.MaxMs != 0 {
		t.Fatalf("zero-duration snapshot: %+v", s)
	}
}

func TestHistogramZeroOnlyQuantilesClamped(t *testing.T) {
	// A histogram holding only 0ns observations must not interpolate a p99
	// above its max: min, max and every quantile are exactly 0.
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(0)
	}
	s := h.Snapshot()
	if s.MinMs != 0 || s.MaxMs != 0 {
		t.Fatalf("min/max: %+v", s)
	}
	if s.P50Ms != 0 || s.P90Ms != 0 || s.P99Ms != 0 {
		t.Errorf("quantiles exceed max: p50=%v p90=%v p99=%v", s.P50Ms, s.P90Ms, s.P99Ms)
	}
}

func TestHistogramQuantilesWithinObservedRange(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	// Single observation: every quantile collapses onto it.
	for _, q := range []float64{s.P50Ms, s.P90Ms, s.P99Ms} {
		if q < s.MinMs || q > s.MaxMs {
			t.Errorf("quantile %v outside [%v, %v]", q, s.MinMs, s.MaxMs)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	ep := r.Endpoint("/cell")
	if r.Endpoint("/cell") != ep {
		t.Fatal("Endpoint not stable across calls")
	}
	ep.Requests.Inc()
	ep.Errors.Inc()
	ep.Latency.Observe(time.Millisecond)
	r.Counter("cache_hits").Add(7)

	s := r.Snapshot()
	if s.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", s.UptimeSeconds)
	}
	cell := s.Endpoints["/cell"]
	if cell.Requests != 1 || cell.Errors != 1 || cell.Latency.Count != 1 {
		t.Errorf("endpoint snapshot: %+v", cell)
	}
	if s.Counters["cache_hits"] != 7 {
		t.Errorf("counters: %+v", s.Counters)
	}
	// The snapshot must be JSON-marshalable (it backs /metrics).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestRegistryGaugesAndRuntime(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.RegisterGauge("cache_occupancy", func() float64 { return v })
	r.RegisterGauge("nil_ignored", nil)

	s := r.Snapshot()
	if got := s.Gauges["cache_occupancy"]; got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	if _, ok := s.Gauges["nil_ignored"]; ok {
		t.Error("nil gauge function was registered")
	}
	v = 2.5
	if got := r.Snapshot().Gauges["cache_occupancy"]; got != 2.5 {
		t.Errorf("gauge not re-evaluated at snapshot time: %v", got)
	}
	if s.Runtime.Goroutines <= 0 {
		t.Errorf("goroutines = %d", s.Runtime.Goroutines)
	}
	if s.Runtime.HeapAllocBytes == 0 || s.Runtime.HeapSysBytes == 0 {
		t.Errorf("heap stats zero: %+v", s.Runtime)
	}
}

func TestRate(t *testing.T) {
	if Rate(0, 0) != 0 {
		t.Error("Rate(0,0) != 0")
	}
	if got := Rate(3, 1); got != 0.75 {
		t.Errorf("Rate(3,1) = %v", got)
	}
}
