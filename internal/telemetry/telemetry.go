// Package telemetry provides the serving layer's observability primitives —
// request/error counters and latency histograms — using only the standard
// library. Everything is safe for concurrent use: counters and histogram
// buckets are atomics, so the hot path never takes a lock.
//
// A Registry groups per-endpoint metrics plus free-form named counters
// (cache hits/misses, …) and renders a point-in-time Snapshot that
// marshals directly to the /metrics JSON schema documented in README.md.
package telemetry

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// numBuckets covers 1µs·2^i for i in [0, numBuckets): ~1µs to ~2199s,
// which brackets any plausible HTTP request latency.
const numBuckets = 32

// bucketBound returns the inclusive upper bound of bucket i in nanoseconds.
func bucketBound(i int) int64 { return int64(time.Microsecond) << uint(i) }

// Histogram is a fixed-bucket exponential latency histogram. Buckets have
// upper bounds 1µs·2^i, so two observations land in the same bucket only
// when they are within 2× of each other — ample resolution for latency
// percentiles while keeping the histogram a small flat array of atomics.
// The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; 0 means "unset" (no observations yet)
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(numBuckets-1, func(b int) bool { return ns <= bucketBound(b) })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= ns {
			break
		}
		// Store ns+1 so a genuine 0ns observation is distinguishable from
		// the unset sentinel; Snapshot subtracts the 1 back off.
		if h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	LeMs  float64 `json:"le_ms"` // inclusive upper bound, milliseconds
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a Histogram. All times are
// milliseconds. Quantiles are estimated by linear interpolation inside the
// containing bucket (exact to within the bucket's 2× resolution).
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	MeanMs  float64  `json:"mean_ms"`
	MinMs   float64  `json:"min_ms"`
	MaxMs   float64  `json:"max_ms"`
	P50Ms   float64  `json:"p50_ms"`
	P90Ms   float64  `json:"p90_ms"`
	P99Ms   float64  `json:"p99_ms"`
	P999Ms  float64  `json:"p999_ms"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Concurrent Observe calls may or may not
// be included; totals are internally consistent to within in-flight updates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	sum := h.sum.Load()
	s.MeanMs = float64(sum) / float64(s.Count) / 1e6
	if mn := h.min.Load(); mn > 0 {
		s.MinMs = float64(mn-1) / 1e6
	}
	s.MaxMs = float64(h.max.Load()) / 1e6
	counts := make([]int64, numBuckets)
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{
				LeMs:  float64(bucketBound(i)) / 1e6,
				Count: counts[i],
			})
		}
	}
	// Interpolated quantiles can land outside the observed [min, max] —
	// most visibly when every observation is 0ns, where interpolation in
	// bucket 0 would report p99 ≈ 0.0005ms above a max of 0. Clamp every
	// quantile into the observed range (max included even when it is 0:
	// count > 0 here, so MaxMs is a real observation, not a sentinel).
	s.P50Ms = clamp(quantile(counts, total, 0.50), s.MinMs, s.MaxMs)
	s.P90Ms = clamp(quantile(counts, total, 0.90), s.MinMs, s.MaxMs)
	s.P99Ms = clamp(quantile(counts, total, 0.99), s.MinMs, s.MaxMs)
	s.P999Ms = clamp(quantile(counts, total, 0.999), s.MinMs, s.MaxMs)
	return s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// quantile estimates the q-quantile in milliseconds from bucket counts,
// interpolating linearly within the containing bucket.
func quantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(bucketBound(i - 1))
			}
			hi := float64(bucketBound(i))
			frac := (rank - float64(seen)) / float64(c)
			return (lo + frac*(hi-lo)) / 1e6
		}
		seen += c
	}
	return float64(bucketBound(numBuckets-1)) / 1e6
}

// Endpoint aggregates the metrics of one HTTP endpoint.
type Endpoint struct {
	Requests Counter
	Errors   Counter
	Latency  Histogram
}

// EndpointSnapshot is the JSON view of an Endpoint.
type EndpointSnapshot struct {
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Latency  HistogramSnapshot `json:"latency"`
}

// Registry holds all metrics of one server: per-endpoint request metrics
// plus named counters for everything else (cache hits, …). Endpoint and
// Counter return stable pointers, so callers resolve them once and then
// update lock-free.
type Registry struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	counters  map[string]*Counter
	gauges    map[string]func() float64

	// Latency objective (see SetSLO); 0 means no SLO configured.
	sloObjectiveMs float64
	sloTarget      float64
}

// NewRegistry creates an empty registry; uptime is measured from now.
func NewRegistry() *Registry {
	return &Registry{
		start:     time.Now(),
		endpoints: make(map[string]*Endpoint),
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]func() float64),
	}
}

// Endpoint returns (creating on first use) the metrics of the named
// endpoint.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.endpoints[name]
	if !ok {
		e = &Endpoint{}
		r.endpoints[name] = e
	}
	return e
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterGauge registers a named gauge rendered by Snapshot at collection
// time. fn must be safe to call concurrently; re-registering a name replaces
// the previous function.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// RuntimeSnapshot reports Go runtime health: scheduler and heap pressure plus
// cumulative GC work. Pause totals are in seconds to match the Prometheus
// rendering.
type RuntimeSnapshot struct {
	Goroutines         int     `json:"goroutines"`
	HeapAllocBytes     uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes       uint64  `json:"heap_sys_bytes"`
	GCRuns             uint32  `json:"gc_runs"`
	GCPauseTotalSecond float64 `json:"gc_pause_total_seconds"`
}

func readRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		Goroutines:         runtime.NumGoroutine(),
		HeapAllocBytes:     ms.HeapAlloc,
		HeapSysBytes:       ms.HeapSys,
		GCRuns:             ms.NumGC,
		GCPauseTotalSecond: float64(ms.PauseTotalNs) / 1e9,
	}
}

// Snapshot is the JSON view of a Registry.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Counters      map[string]int64            `json:"counters,omitempty"`
	Gauges        map[string]float64          `json:"gauges,omitempty"`
	Runtime       RuntimeSnapshot             `json:"runtime"`
	// SLO is present when the registry has a latency objective (SetSLO).
	SLO *SLOReport `json:"slo,omitempty"`
}

// Snapshot captures every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	eps := make(map[string]*Endpoint, len(r.endpoints))
	for k, v := range r.endpoints {
		eps[k] = v
	}
	ctrs := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		ctrs[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	start := r.start
	sloMs, sloTarget := r.sloObjectiveMs, r.sloTarget
	r.mu.Unlock()

	s := Snapshot{
		UptimeSeconds: time.Since(start).Seconds(),
		Endpoints:     make(map[string]EndpointSnapshot, len(eps)),
		Runtime:       readRuntime(),
	}
	for name, e := range eps {
		s.Endpoints[name] = EndpointSnapshot{
			Requests: e.Requests.Load(),
			Errors:   e.Errors.Load(),
			Latency:  e.Latency.Snapshot(),
		}
	}
	if len(ctrs) > 0 {
		s.Counters = make(map[string]int64, len(ctrs))
		for name, c := range ctrs {
			s.Counters[name] = c.Load()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for name, fn := range gauges {
			s.Gauges[name] = fn()
		}
	}
	s.SLO = sloReport(sloMs, sloTarget, s.Endpoints)
	return s
}

// Rate returns a/(a+b), or 0 when both are zero — the hit-rate convenience
// used for cache metrics.
func Rate(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}
