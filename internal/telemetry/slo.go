package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Latency SLOs. A registry can carry one latency objective — "this fraction
// of requests answers within this many milliseconds" — and every endpoint's
// attainment and burn rate are then derived from the same histograms the
// metrics endpoints already expose, so the SLO view can never disagree with
// the latency view.

// SLOEndpoint is one endpoint's standing against the registry's objective.
type SLOEndpoint struct {
	Endpoint string `json:"endpoint"`
	Count    int64  `json:"count"`
	// Attainment is the fraction of observed requests at or under the
	// objective (1 when the endpoint has no traffic — an idle endpoint is
	// not out of SLO).
	Attainment float64 `json:"attainment"`
	// BurnRate is (1-attainment)/(1-target): 1.0 means the error budget is
	// being consumed exactly at the sustainable rate, above 1 it runs out
	// early, 0 means no budget is burning.
	BurnRate float64 `json:"burn_rate"`
}

// SLOReport is the registry-wide SLO view: the shared objective plus each
// endpoint's attainment, sorted by endpoint name.
type SLOReport struct {
	ObjectiveMs float64       `json:"objective_ms"`
	Target      float64       `json:"target"`
	Endpoints   []SLOEndpoint `json:"endpoints"`
}

// maxSLOTarget keeps the burn-rate denominator finite: a target of 100% has
// no error budget, so it is clamped just below.
const maxSLOTarget = 0.9999

// SetSLO configures the registry's latency objective: target (a fraction,
// e.g. 0.99) of each endpoint's requests should answer within objectiveMs.
// Snapshots taken after the call carry an SLOReport; objectiveMs <= 0
// removes the objective.
func (r *Registry) SetSLO(objectiveMs, target float64) {
	if target > maxSLOTarget {
		target = maxSLOTarget
	}
	r.mu.Lock()
	r.sloObjectiveMs, r.sloTarget = objectiveMs, target
	r.mu.Unlock()
}

// FractionBelow estimates the fraction of observations at or under ms,
// interpolating linearly inside the containing bucket (the same estimate the
// quantiles use, inverted). An empty histogram reports 1.
func (h HistogramSnapshot) FractionBelow(ms float64) float64 {
	if h.Count == 0 {
		return 1
	}
	var below float64
	for _, b := range h.Buckets {
		// Bucket bounds are 1µs·2^i, so each bucket's lower bound is half
		// its upper bound — except the first (1µs), which starts at 0.
		lo := 0.0
		if b.LeMs > float64(bucketBound(0))/1e6 {
			lo = b.LeMs / 2
		}
		switch {
		case ms >= b.LeMs:
			below += float64(b.Count)
		case ms <= lo:
			// none of this bucket
		default:
			below += float64(b.Count) * (ms - lo) / (b.LeMs - lo)
		}
	}
	return below / float64(h.Count)
}

// sloReport derives the report from already-snapshotted endpoints.
func sloReport(objectiveMs, target float64, eps map[string]EndpointSnapshot) *SLOReport {
	if objectiveMs <= 0 {
		return nil
	}
	rep := &SLOReport{ObjectiveMs: objectiveMs, Target: target}
	for _, name := range sortedKeys(eps) {
		h := eps[name].Latency
		att := h.FractionBelow(objectiveMs)
		rep.Endpoints = append(rep.Endpoints, SLOEndpoint{
			Endpoint:   name,
			Count:      h.Count,
			Attainment: att,
			BurnRate:   (1 - att) / (1 - target),
		})
	}
	return rep
}

// --- Merged (cluster-scope) exposition --------------------------------------

// LabeledMetrics pairs one parsed exposition with labels to inject on every
// sample — the per-shard labels of the cluster-scope merge.
type LabeledMetrics struct {
	Labels map[string]string
	M      *PromMetrics
}

// WriteMergedPrometheus renders several parsed expositions as one: each
// family is declared once (first declaration wins on a type conflict) and
// every part's samples follow in part order with the part's labels injected
// (injected labels override same-named sample labels). Because each part
// carries distinct injected labels, merged histograms stay per-series
// monotone and the output re-parses under ParsePrometheus.
func WriteMergedPrometheus(w io.Writer, parts []LabeledMetrics) error {
	types := make(map[string]string)
	var fams []string
	for _, p := range parts {
		for fam, typ := range p.M.Types {
			if _, ok := types[fam]; !ok {
				types[fam] = typ
				fams = append(fams, fam)
			}
		}
	}
	sort.Strings(fams)
	bw := &errWriter{w: w}
	for _, fam := range fams {
		bw.printf("# TYPE %s %s\n", fam, types[fam])
		for _, p := range parts {
			for _, s := range p.M.Samples {
				if sampleFamily(s.Name, p.M.Types) != fam {
					continue
				}
				bw.printf("%s%s %s\n", s.Name, renderLabels(s.Labels, p.Labels), formatPromValue(s.Value))
			}
		}
	}
	return bw.err
}

// renderLabels renders the union of sample and injected labels, sorted by
// name, injected values winning.
func renderLabels(sample, injected map[string]string) string {
	if len(sample) == 0 && len(injected) == 0 {
		return ""
	}
	merged := make(map[string]string, len(sample)+len(injected))
	for k, v := range sample {
		merged[k] = v
	}
	for k, v := range injected {
		merged[k] = v
	}
	out := "{"
	for i, k := range sortedKeys(merged) {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", k, promEscapeLabel(merged[k]))
	}
	return out + "}"
}

func formatPromValue(v float64) string {
	return fmt.Sprintf("%g", v)
}
