package telemetry

import (
	"strings"
	"testing"
	"time"
)

func testSnapshot() Snapshot {
	r := NewRegistry()
	ep := r.Endpoint("/v1/cell")
	ep.Requests.Add(10)
	ep.Errors.Add(2)
	ep.Latency.Observe(1 * time.Millisecond)
	ep.Latency.Observe(2 * time.Millisecond)
	ep.Latency.Observe(40 * time.Millisecond)
	r.Endpoint(`/v1/we"ird\nep`).Requests.Inc()
	r.Counter("cache_hits").Add(7)
	r.Counter("row_reads_total").Add(3)
	r.RegisterGauge("cache_occupancy_rows", func() float64 { return 12 })
	r.RegisterGauge("io_row_reads_total", func() float64 { return 99 })
	return r.Snapshot()
}

func TestWritePrometheusParses(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, testSnapshot()); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := sb.String()
	m, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out)
	}

	if m.Types["seqstore_requests_total"] != "counter" {
		t.Errorf("requests_total type = %q", m.Types["seqstore_requests_total"])
	}
	if m.Types["seqstore_request_duration_seconds"] != "histogram" {
		t.Errorf("duration type = %q", m.Types["seqstore_request_duration_seconds"])
	}
	if m.Types["seqstore_uptime_seconds"] != "gauge" {
		t.Errorf("uptime type = %q", m.Types["seqstore_uptime_seconds"])
	}
	// Registry counters gain a _total suffix; gauges keep their names, with
	// *_total-named gauges typed counter so scrapers can rate() them.
	if m.Types["seqstore_cache_hits_total"] != "counter" {
		t.Errorf("cache_hits type = %q", m.Types["seqstore_cache_hits_total"])
	}
	if m.Types["seqstore_cache_occupancy_rows"] != "gauge" {
		t.Errorf("occupancy type = %q", m.Types["seqstore_cache_occupancy_rows"])
	}
	if m.Types["seqstore_io_row_reads_total"] != "counter" {
		t.Errorf("io gauge type = %q", m.Types["seqstore_io_row_reads_total"])
	}

	if got := m.Get("seqstore_cache_hits_total"); len(got) != 1 || got[0] != 7 {
		t.Errorf("cache_hits = %v", got)
	}
	if got := m.Get("seqstore_go_goroutines"); len(got) != 1 || got[0] <= 0 {
		t.Errorf("goroutines = %v", got)
	}

	// Per-endpoint samples carry the endpoint label, escaped.
	var sawCell, sawWeird bool
	for _, s := range m.Samples {
		if s.Name != "seqstore_requests_total" {
			continue
		}
		switch s.Labels["endpoint"] {
		case "/v1/cell":
			sawCell = true
			if s.Value != 10 {
				t.Errorf("cell requests = %v", s.Value)
			}
		case `/v1/we"ird\nep`:
			sawWeird = true
		}
	}
	if !sawCell || !sawWeird {
		t.Errorf("endpoint labels missing: cell=%v weird=%v", sawCell, sawWeird)
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	m, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// ParsePrometheus already enforces bucket monotonicity and the +Inf =
	// _count invariant; here pin the concrete values for /v1/cell.
	var inf, count, sum float64
	for _, s := range m.Samples {
		if s.Labels["endpoint"] != "/v1/cell" {
			continue
		}
		switch s.Name {
		case "seqstore_request_duration_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				inf = s.Value
			}
		case "seqstore_request_duration_seconds_count":
			count = s.Value
		case "seqstore_request_duration_seconds_sum":
			sum = s.Value
		}
	}
	if inf != 3 || count != 3 {
		t.Errorf("+Inf = %v, count = %v, want 3", inf, count)
	}
	wantSum := (1 + 2 + 40) * 1e-3
	if d := sum - wantSum; d < -1e-9 || d > 1e-9 {
		t.Errorf("sum = %v s, want %v", sum, wantSum)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []string{
		"no_type_decl 1\n",
		"# TYPE h histogram\nh_bucket{le=\"2\"} 5\nh_bucket{le=\"1\"} 6\nh_bucket{le=\"+Inf\"} 6\nh_count 6\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 4\nh_count 4\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
		"# TYPE c counter\nc{unterminated=\"x} 1\n",
		"# TYPE c counter\nc not-a-number\n",
		"# TYPE c counter\n# TYPE c gauge\nc 1\n",
	}
	for i, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed input accepted:\n%s", i, in)
		}
	}
}

func TestPromSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"cache_hits", "cache_hits"},
		{"weird-name.x", "weird_name_x"},
		{"9lead", "_lead"},
		{"ok9", "ok9"},
	}
	for _, c := range cases {
		if got := promSanitizeName(c.in); got != c.want {
			t.Errorf("promSanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
