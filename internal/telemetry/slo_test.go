package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func snapshotWith(durs ...time.Duration) HistogramSnapshot {
	var h Histogram
	for _, d := range durs {
		h.Observe(d)
	}
	return h.Snapshot()
}

func TestFractionBelow(t *testing.T) {
	// Empty histogram: everything trivially meets the objective.
	if got := snapshotWith().FractionBelow(1); got != 1 {
		t.Fatalf("empty FractionBelow = %v, want 1", got)
	}

	// All observations in one bucket well under the objective.
	s := snapshotWith(time.Millisecond, time.Millisecond, time.Millisecond)
	if got := s.FractionBelow(1000); got != 1 {
		t.Fatalf("all-fast FractionBelow = %v, want 1", got)
	}
	if got := s.FractionBelow(0.0001); got != 0 {
		t.Fatalf("objective below every bucket: FractionBelow = %v, want 0", got)
	}

	// Half fast, half slow around the objective: the fast half counts in
	// full, the slow half not at all.
	s = snapshotWith(time.Millisecond, time.Millisecond, 4*time.Second, 4*time.Second)
	got := s.FractionBelow(100)
	if got < 0.45 || got > 0.55 {
		t.Fatalf("split FractionBelow = %v, want ~0.5", got)
	}

	// Interpolation inside a bucket is monotone in the objective.
	s = snapshotWith(3 * time.Millisecond)
	lo, hi := s.FractionBelow(2.5), s.FractionBelow(3.9)
	if lo > hi {
		t.Fatalf("FractionBelow not monotone: f(2.5)=%v > f(3.9)=%v", lo, hi)
	}
}

func TestSLOReport(t *testing.T) {
	r := NewRegistry()
	r.SetSLO(100, 0.9)
	ep := r.Endpoint("/v1/cell")
	for i := 0; i < 9; i++ {
		ep.Latency.Observe(time.Millisecond)
	}
	ep.Latency.Observe(10 * time.Second) // one breach in ten

	rep := r.Snapshot().SLO
	if rep == nil || rep.ObjectiveMs != 100 || rep.Target != 0.9 {
		t.Fatalf("report config: %+v", rep)
	}
	if len(rep.Endpoints) != 1 || rep.Endpoints[0].Endpoint != "/v1/cell" {
		t.Fatalf("report endpoints: %+v", rep.Endpoints)
	}
	e := rep.Endpoints[0]
	if e.Attainment < 0.85 || e.Attainment > 0.95 {
		t.Fatalf("attainment = %v, want ~0.9", e.Attainment)
	}
	// Burning exactly the budget ⇒ burn rate ~1.
	if e.BurnRate < 0.5 || e.BurnRate > 1.5 {
		t.Fatalf("burn rate = %v, want ~1", e.BurnRate)
	}

	// A perfect target clamps so the burn-rate denominator stays finite.
	r2 := NewRegistry()
	r2.SetSLO(100, 1.0)
	ep2 := r2.Endpoint("/x")
	ep2.Latency.Observe(time.Minute)
	rep2 := r2.Snapshot().SLO
	if math.IsInf(rep2.Endpoints[0].BurnRate, 1) || math.IsNaN(rep2.Endpoints[0].BurnRate) {
		t.Fatalf("burn rate not finite at target 1.0: %v", rep2.Endpoints[0].BurnRate)
	}

	// No objective, no report.
	r3 := NewRegistry()
	if r3.Snapshot().SLO != nil {
		t.Fatal("SLO report present without an objective")
	}
}

// TestWriteMergedPrometheus round-trips a two-shard merge through the
// structural parser: one TYPE line per family, every sample tagged with its
// injected labels, injected labels overriding same-named scraped ones.
func TestWriteMergedPrometheus(t *testing.T) {
	scrape := func(extra string) *PromMetrics {
		reg := NewRegistry()
		ep := reg.Endpoint("/v1/cell")
		ep.Requests.Add(3)
		ep.Latency.Observe(2 * time.Millisecond)
		reg.Counter("cache_hits").Add(7)
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if extra != "" {
			buf.WriteString(extra)
		}
		m, err := ParsePrometheus(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	parts := []LabeledMetrics{
		{Labels: map[string]string{"shard": "0"}, M: scrape("")},
		{Labels: map[string]string{"shard": "1"},
			M: scrape("# TYPE extra_family gauge\nextra_family{shard=\"WRONG\"} 1\n")},
	}
	var out bytes.Buffer
	if err := WriteMergedPrometheus(&out, parts); err != nil {
		t.Fatal(err)
	}
	merged, err := ParsePrometheus(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v\n%s", err, out.String())
	}
	for _, s := range merged.Samples {
		if s.Labels["shard"] != "0" && s.Labels["shard"] != "1" {
			t.Fatalf("sample %s lost its shard label: %v", s.Name, s.Labels)
		}
	}
	// The injected shard label beat the scraped one.
	for _, s := range merged.Samples {
		if s.Name == "extra_family" && s.Labels["shard"] != "1" {
			t.Fatalf("injected label did not override scraped: %v", s.Labels)
		}
	}
	// Both shards' cache counters survive as distinct series.
	if got := len(merged.Get("seqstore_cache_hits_total")); got != 2 {
		t.Fatalf("merged cache counter has %d series, want 2", got)
	}
	// Exactly one TYPE line per family.
	for fam := range merged.Types {
		if n := strings.Count(out.String(), "# TYPE "+fam+" "); n != 1 {
			t.Fatalf("family %s has %d TYPE lines", fam, n)
		}
	}
}
