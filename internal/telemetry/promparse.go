package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Minimal hand-rolled Prometheus text-format parser. It exists so the test
// suites can validate /v1/metrics?format=prom output without a client
// library: it checks the structural rules a scraper relies on (names and
// label syntax, numeric values, TYPE declarations preceding samples,
// histogram bucket monotonicity) and hands back the samples.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromMetrics is a parsed exposition: declared family types plus samples in
// input order.
type PromMetrics struct {
	Types   map[string]string // family name -> "counter" | "gauge" | "histogram" | ...
	Samples []PromSample
}

// Get returns the values of the named samples (any labels), in input order.
func (m *PromMetrics) Get(name string) []float64 {
	var out []float64
	for _, s := range m.Samples {
		if s.Name == name {
			out = append(out, s.Value)
		}
	}
	return out
}

// Families returns the declared family names, sorted.
func (m *PromMetrics) Families() []string {
	return sortedKeys(m.Types)
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sampleFamily strips the histogram sample suffixes so a sample can be
// matched against its family's TYPE declaration.
func sampleFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// ParsePrometheus parses a text exposition, enforcing the structural rules
// above. It is intentionally minimal: no timestamps, no exemplars, no UTF-8
// names — none of which WritePrometheus emits.
func ParsePrometheus(r io.Reader) (*PromMetrics, error) {
	m := &PromMetrics{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !validPromName(parts[2]) {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if _, dup := m.Types[parts[2]]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, parts[2])
			}
			m.Types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := sampleFamily(s.Name, m.Types)
		if _, ok := m.Types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.checkHistograms(); err != nil {
		return nil, err
	}
	return m, nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\' && inQuote:
				esc = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated labels: %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Ignore an optional timestamp (we never emit one, but be lenient).
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=': %q", body)
		}
		name := body[:eq]
		if !validPromName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("label %s: unquoted value", name)
		}
		var val strings.Builder
		i, closed := 1, false
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i])
				default:
					return fmt.Errorf("label %s: bad escape \\%c", name, body[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("label %s: unterminated value", name)
		}
		into[name] = val.String()
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

// checkHistograms verifies that every declared histogram family has
// monotonically non-decreasing buckets ending in +Inf, and that the +Inf
// bucket equals the family _count, per label set.
func (m *PromMetrics) checkHistograms() error {
	for fam, typ := range m.Types {
		if typ != "histogram" {
			continue
		}
		type series struct {
			les    []float64
			counts []float64
			count  float64
			hasInf bool
		}
		byLabels := map[string]*series{}
		keyOf := func(labels map[string]string) string {
			parts := make([]string, 0, len(labels))
			for k, v := range labels {
				if k == "le" {
					continue
				}
				parts = append(parts, k+"="+v)
			}
			sort.Strings(parts)
			return strings.Join(parts, ",")
		}
		get := func(labels map[string]string) *series {
			k := keyOf(labels)
			s, ok := byLabels[k]
			if !ok {
				s = &series{}
				byLabels[k] = s
			}
			return s
		}
		for _, s := range m.Samples {
			switch s.Name {
			case fam + "_bucket":
				ser := get(s.Labels)
				le := s.Labels["le"]
				if le == "+Inf" {
					ser.hasInf = true
					ser.les = append(ser.les, 0)
				} else {
					v, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("%s: bad le %q", fam, le)
					}
					if ser.hasInf {
						return fmt.Errorf("%s: bucket after +Inf", fam)
					}
					if n := len(ser.les); n > 0 && v <= ser.les[n-1] {
						return fmt.Errorf("%s: le not increasing at %g", fam, v)
					}
					ser.les = append(ser.les, v)
				}
				if n := len(ser.counts); n > 0 && s.Value < ser.counts[n-1] {
					return fmt.Errorf("%s: bucket counts decrease at le=%s", fam, le)
				}
				ser.counts = append(ser.counts, s.Value)
			case fam + "_count":
				get(s.Labels).count = s.Value
			}
		}
		for k, ser := range byLabels {
			if !ser.hasInf {
				return fmt.Errorf("%s{%s}: missing +Inf bucket", fam, k)
			}
			if n := len(ser.counts); n > 0 && ser.counts[n-1] != ser.count {
				return fmt.Errorf("%s{%s}: +Inf bucket %g != count %g", fam, k, ser.counts[n-1], ser.count)
			}
		}
	}
	return nil
}
