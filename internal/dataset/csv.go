package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"seqstore/internal/linalg"
)

// WriteCSV emits the matrix as comma-separated values, one row per line.
// Values are formatted with strconv 'g'/-1, so LoadCSV round-trips them
// bit-exactly.
func WriteCSV(w io.Writer, m *linalg.Matrix) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	rows, cols := m.Dims()
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := 0; j < cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return fmt.Errorf("dataset: write csv: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(row[j], 'g', -1, 64)); err != nil {
				return fmt.Errorf("dataset: write csv: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: write csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: write csv: %w", err)
	}
	return nil
}

// ReadCSV parses a matrix from comma-separated values: one sequence per
// line, all lines the same length. Blank lines and lines starting with '#'
// are skipped; a non-numeric first line is treated as a header and skipped.
func ReadCSV(r io.Reader) (*linalg.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var data []float64
	cols := -1
	rows := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		vals := make([]float64, len(fields))
		bad := false
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				bad = true
				break
			}
			vals[j] = v
		}
		if bad {
			if rows == 0 && cols == -1 {
				// Header line: skip.
				continue
			}
			return nil, fmt.Errorf("dataset: csv line %d: non-numeric field", lineNo)
		}
		if cols == -1 {
			cols = len(vals)
		} else if len(vals) != cols {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", lineNo, len(vals), cols)
		}
		data = append(data, vals...)
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if rows == 0 {
		return linalg.NewMatrix(0, 0), nil
	}
	return linalg.NewMatrixFrom(rows, cols, data), nil
}
