package dataset

import (
	"errors"
	"testing"

	"seqstore/internal/matio"
)

func TestPhoneSourceMatchesGeneratePhone(t *testing.T) {
	cfg := DefaultPhoneConfig(40)
	cfg.M = 30
	want := GeneratePhone(cfg)
	src := NewPhoneSource(cfg)

	if n, m := src.Dims(); n != 40 || m != 30 {
		t.Fatalf("dims = (%d,%d)", n, m)
	}
	// Scan path.
	err := src.ScanRows(func(i int, row []float64) error {
		for j, v := range row {
			if v != want.At(i, j) {
				t.Fatalf("scan mismatch at (%d,%d)", i, j)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Random-access path.
	dst := make([]float64, 30)
	for _, i := range []int{0, 17, 39, 5} {
		if err := src.ReadRow(i, dst); err != nil {
			t.Fatal(err)
		}
		for j, v := range dst {
			if v != want.At(i, j) {
				t.Fatalf("read mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPhoneSourceErrors(t *testing.T) {
	src := NewPhoneSource(DefaultPhoneConfig(5))
	dst := make([]float64, 366)
	if err := src.ReadRow(5, dst); !errors.Is(err, matio.ErrRowRange) {
		t.Errorf("range: %v", err)
	}
	if err := src.ReadRow(0, make([]float64, 3)); !errors.Is(err, matio.ErrRowMismatch) {
		t.Errorf("mismatch: %v", err)
	}
}

func TestPhoneSourceStats(t *testing.T) {
	cfg := DefaultPhoneConfig(7)
	cfg.M = 10
	src := NewPhoneSource(cfg)
	src.ScanRows(func(i int, row []float64) error { return nil })
	if src.Stats().Passes() != 1 || src.Stats().RowReads() != 7 {
		t.Errorf("stats = %d/%d", src.Stats().Passes(), src.Stats().RowReads())
	}
}
