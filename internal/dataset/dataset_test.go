package dataset

import (
	"math"
	"testing"

	"seqstore/internal/linalg"
)

func TestGeneratePhoneDims(t *testing.T) {
	cfg := DefaultPhoneConfig(100)
	x := GeneratePhone(cfg)
	if r, c := x.Dims(); r != 100 || c != 366 {
		t.Fatalf("dims = (%d,%d), want (100,366)", r, c)
	}
}

func TestGeneratePhoneDeterministic(t *testing.T) {
	cfg := DefaultPhoneConfig(50)
	a := GeneratePhone(cfg)
	b := GeneratePhone(cfg)
	if !linalg.Equal(a, b, 0) {
		t.Error("same seed should generate identical matrices")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := GeneratePhone(cfg2)
	if linalg.Equal(a, c, 0) {
		t.Error("different seeds should generate different matrices")
	}
}

func TestGeneratePhonePrefixStability(t *testing.T) {
	// phone2000 must be a prefix of phone100K (scale-up experiment).
	small := GeneratePhone(DefaultPhoneConfig(20))
	large := GeneratePhone(DefaultPhoneConfig(200))
	for i := 0; i < 20; i++ {
		for j := 0; j < 366; j++ {
			if small.At(i, j) != large.At(i, j) {
				t.Fatalf("row %d differs between sizes", i)
			}
		}
	}
}

func TestGeneratePhoneNonNegative(t *testing.T) {
	x := GeneratePhone(DefaultPhoneConfig(200))
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			if x.At(i, j) < 0 {
				t.Fatalf("negative call volume at (%d,%d)", i, j)
			}
		}
	}
}

func TestGeneratePhoneHasZeroCustomers(t *testing.T) {
	x := GeneratePhone(DefaultPhoneConfig(1000))
	zeros := 0
	for i := 0; i < x.Rows(); i++ {
		allZero := true
		for j := 0; j < x.Cols(); j++ {
			if x.At(i, j) != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("expected some all-zero customers (§6.2)")
	}
	if zeros > 100 {
		t.Errorf("too many zero customers: %d of 1000", zeros)
	}
}

func TestGeneratePhoneSkewedVolumes(t *testing.T) {
	// Customer totals should be heavily skewed (Zipf-like): the top 10%
	// of customers should carry a disproportionate share of the volume.
	x := GeneratePhone(DefaultPhoneConfig(500))
	totals := make([]float64, x.Rows())
	var grand float64
	for i := range totals {
		for _, v := range x.Row(i) {
			totals[i] += v
		}
		grand += totals[i]
	}
	// Share of the single largest customer must dominate the average one.
	var maxTotal float64
	for _, v := range totals {
		if v > maxTotal {
			maxTotal = v
		}
	}
	avg := grand / float64(len(totals))
	if maxTotal < 5*avg {
		t.Errorf("volume distribution not skewed: max %.1f vs avg %.1f", maxTotal, avg)
	}
}

func TestGeneratePhoneLowEffectiveRank(t *testing.T) {
	// A few principal components must capture most of the energy — this is
	// the property that makes SVD compression work on calling data.
	x := GeneratePhone(DefaultPhoneConfig(300))
	s, err := linalg.ComputeSVD(x)
	if err != nil {
		t.Fatal(err)
	}
	var total, top10 float64
	for i, sg := range s.Sigma {
		total += sg * sg
		if i < 10 {
			top10 += sg * sg
		}
	}
	if frac := top10 / total; frac < 0.7 {
		t.Errorf("top-10 components capture only %.1f%% of energy, want ≥70%%", 100*frac)
	}
}

func TestGeneratePhoneWeekdayWeekendStructure(t *testing.T) {
	// Business-heavy columns (weekdays) and weekend columns should show a
	// visible difference in aggregate across many customers.
	x := GeneratePhone(DefaultPhoneConfig(400))
	var weekday, weekend float64
	var nwd, nwe int
	for j := 0; j < x.Cols(); j++ {
		col := 0.0
		for i := 0; i < x.Rows(); i++ {
			col += x.At(i, j)
		}
		if j%7 < 5 {
			weekday += col
			nwd++
		} else {
			weekend += col
			nwe++
		}
	}
	if weekday/float64(nwd) == weekend/float64(nwe) {
		t.Error("no weekday/weekend structure present")
	}
}

func TestGenerateStocksDims(t *testing.T) {
	x := GenerateStocks(DefaultStocksConfig())
	if r, c := x.Dims(); r != 381 || c != 128 {
		t.Fatalf("dims = (%d,%d), want (381,128)", r, c)
	}
}

func TestGenerateStocksDeterministic(t *testing.T) {
	a := GenerateStocks(DefaultStocksConfig())
	b := GenerateStocks(DefaultStocksConfig())
	if !linalg.Equal(a, b, 0) {
		t.Error("stocks generation not deterministic")
	}
}

func TestGenerateStocksPositivePrices(t *testing.T) {
	x := GenerateStocks(DefaultStocksConfig())
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			v := x.At(i, j)
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("bad price %v at (%d,%d)", v, i, j)
			}
		}
	}
}

func TestGenerateStocksSerialCorrelation(t *testing.T) {
	// Successive prices must be highly correlated (random-walk property,
	// the reason DCT does comparatively well on stocks, §5.1).
	x := GenerateStocks(DefaultStocksConfig())
	var num, d1, d2 float64
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		for t := 1; t < len(row); t++ {
			num += (row[t] - mean) * (row[t-1] - mean)
			d1 += (row[t] - mean) * (row[t] - mean)
			d2 += (row[t-1] - mean) * (row[t-1] - mean)
		}
	}
	corr := num / math.Sqrt(d1*d2)
	if corr < 0.9 {
		t.Errorf("lag-1 autocorrelation %.3f, want ≥0.9", corr)
	}
}

func TestGenerateStocksDominantDirection(t *testing.T) {
	// The first principal component should dominate (Figure 11, right).
	x := GenerateStocks(DefaultStocksConfig())
	s, err := linalg.ComputeSVD(x)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, sg := range s.Sigma {
		total += sg * sg
	}
	if frac := s.Sigma[0] * s.Sigma[0] / total; frac < 0.9 {
		t.Errorf("first component carries %.1f%% of energy, want ≥90%%", 100*frac)
	}
}

func TestToyMatchesTable1(t *testing.T) {
	x := Toy()
	if r, c := x.Dims(); r != 7 || c != 5 {
		t.Fatalf("toy dims = (%d,%d)", r, c)
	}
	if x.At(3, 0) != 5 {
		t.Error("KLM Co. Wednesday should be 5")
	}
	if x.At(5, 4) != 3 {
		t.Error("Johnson Sunday should be 3")
	}
	if len(ToyRowLabels) != 7 || len(ToyColLabels) != 5 {
		t.Error("label lengths wrong")
	}
}

func TestSubset(t *testing.T) {
	x := GeneratePhone(DefaultPhoneConfig(30))
	s := Subset(x, 10)
	if r, _ := s.Dims(); r != 10 {
		t.Fatalf("subset rows = %d, want 10", r)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < x.Cols(); j++ {
			if s.At(i, j) != x.At(i, j) {
				t.Fatal("subset values differ")
			}
		}
	}
	// Clamping.
	if r, _ := Subset(x, 100).Dims(); r != 30 {
		t.Error("Subset should clamp n to available rows")
	}
	// Copy semantics.
	s.Set(0, 0, -1)
	if x.At(0, 0) == -1 {
		t.Error("Subset must copy, not alias")
	}
}
