package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"seqstore/internal/linalg"
)

func TestCSVRoundTripBitExact(t *testing.T) {
	x := GeneratePhone(DefaultPhoneConfig(20))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := got.Dims(); r != 20 || c != 366 {
		t.Fatalf("dims = (%d,%d)", r, c)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 366; j++ {
			if math.Float64bits(got.At(i, j)) != math.Float64bits(x.At(i, j)) {
				t.Fatalf("cell (%d,%d) not bit-exact", i, j)
			}
		}
	}
}

func TestCSVSpecialValues(t *testing.T) {
	x := linalg.FromRows([][]float64{{0, -1e-300, 1e300, 0.1}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if got.At(0, j) != x.At(0, j) {
			t.Errorf("col %d: %v != %v", j, got.At(0, j), x.At(0, j))
		}
	}
}

func TestReadCSVHeaderAndComments(t *testing.T) {
	in := "day1,day2,day3\n# a comment\n1,2,3\n\n4,5,6\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r, c := got.Dims(); r != 2 || c != 3 {
		t.Fatalf("dims = (%d,%d)", r, c)
	}
	if got.At(1, 2) != 6 {
		t.Error("values wrong")
	}
}

func TestReadCSVRaggedRejected(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged csv accepted")
	}
}

func TestReadCSVNonNumericMidFile(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\nfoo,bar\n")); err == nil {
		t.Error("non-numeric row after data accepted")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := got.Dims(); r != 0 {
		t.Error("empty csv should give empty matrix")
	}
}

func TestReadCSVWhitespaceTolerant(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(" 1 , 2 \n 3 , 4 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 0) != 3 {
		t.Error("whitespace not trimmed")
	}
}
