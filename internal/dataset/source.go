package dataset

import (
	"fmt"

	"seqstore/internal/matio"
)

// PhoneSource is an out-of-core view of a synthetic phone dataset: rows are
// generated on demand from (Seed, row) instead of being materialized, so
// the scale-up experiment (Figure 10: N up to 100,000) streams the "huge"
// matrix exactly the way the paper's algorithms would read it from disk,
// without holding N×M floats in memory.
//
// It implements matio.RowReader; row contents are identical to
// GeneratePhone with the same configuration.
type PhoneSource struct {
	cfg   PhoneConfig
	stats matio.Stats
}

// NewPhoneSource returns a deterministic streaming source for cfg.
func NewPhoneSource(cfg PhoneConfig) *PhoneSource { return &PhoneSource{cfg: cfg} }

// Dims returns (N, M).
func (s *PhoneSource) Dims() (int, int) { return s.cfg.N, s.cfg.M }

// Stats exposes simulated IO counters (each generated row counts as a row
// read, matching the disk-backed implementations).
func (s *PhoneSource) Stats() *matio.Stats { return &s.stats }

// ReadRow synthesizes row i into dst.
func (s *PhoneSource) ReadRow(i int, dst []float64) error {
	if i < 0 || i >= s.cfg.N {
		return fmt.Errorf("%w: %d of %d", matio.ErrRowRange, i, s.cfg.N)
	}
	if len(dst) != s.cfg.M {
		return fmt.Errorf("%w: dst %d, want %d", matio.ErrRowMismatch, len(dst), s.cfg.M)
	}
	generatePhoneRow(s.cfg, i, dst)
	s.stats.CountRead()
	return nil
}

// ScanRows streams every row in order.
func (s *PhoneSource) ScanRows(fn func(i int, row []float64) error) error {
	s.stats.CountPass()
	return s.ScanRowsRange(0, s.cfg.N, fn)
}

// ScanRowsRange streams rows [start, end) in order. Rows are synthesized
// independently, so any number of range scans may run concurrently; each row
// counts one read and no pass (see matio.StartPass).
func (s *PhoneSource) ScanRowsRange(start, end int, fn func(i int, row []float64) error) error {
	if start < 0 || end > s.cfg.N || start > end {
		return fmt.Errorf("%w: range [%d, %d) of %d", matio.ErrRowRange, start, end, s.cfg.N)
	}
	row := make([]float64, s.cfg.M)
	for i := start; i < end; i++ {
		generatePhoneRow(s.cfg, i, row)
		s.stats.CountRead()
		if err := fn(i, row); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ matio.RowReader    = (*PhoneSource)(nil)
	_ matio.RangeScanner = (*PhoneSource)(nil)
)
