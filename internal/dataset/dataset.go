// Package dataset synthesizes the evaluation datasets of the paper.
//
// The paper evaluates on two real datasets we cannot ship: AT&T customer
// calling volumes ("phone100K": N=100,000 customers × M=366 days) and daily
// stock closing prices ("stocks": N=381 × M=128). This package generates
// structural stand-ins that preserve the properties the experiments depend
// on (see DESIGN.md §3):
//
//   - phone: a mixture of weekday ("business") and weekend ("residential")
//     calling patterns — the two "blobs" of Table 1 — with Zipf-skewed
//     customer volumes, mild seasonality, multiplicative noise, sparse
//     spike outliers, and a fraction of all-zero customers (§6.2).
//   - stocks: geometric random walks sharing a strong market factor, so
//     most sequences follow one dominant direction (Figure 11, right) and
//     successive values are highly correlated (which is what makes DCT
//     competitive on this dataset, §5.1).
//
// All generators are deterministic given their Seed.
package dataset

import (
	"math"
	"math/rand"

	"seqstore/internal/linalg"
)

// PhoneConfig parameterizes the synthetic calling-volume matrix.
type PhoneConfig struct {
	N, M int   // customers × days
	Seed int64 // RNG seed; same seed ⇒ same matrix

	// Customer-mix fractions; they should sum to ≤ 1, the remainder are
	// "mixed" callers active all week.
	BusinessFrac    float64
	ResidentialFrac float64
	// ZeroFrac is the fraction of customers with no activity at all
	// (the paper's §6.2 practical issue).
	ZeroFrac float64

	// ParetoAlpha controls volume skew across customers (smaller = heavier
	// tail). The paper's Figure 11 shows a Zipf-like distribution.
	ParetoAlpha float64
	// NoiseLevel is the std-dev of multiplicative log-normal noise.
	NoiseLevel float64
	// SpikeProb is the per-cell probability of an outlier spike; SpikeScale
	// is the spike magnitude multiplier. These produce the few
	// badly-reconstructed cells SVDD repairs (Figure 8).
	SpikeProb  float64
	SpikeScale float64
	// SeasonAmp is the amplitude of an annual sinusoidal component.
	SeasonAmp float64
}

// DefaultPhoneConfig returns the configuration used throughout the
// experiments for an n-customer dataset with the paper's M=366 days.
func DefaultPhoneConfig(n int) PhoneConfig {
	return PhoneConfig{
		N: n, M: 366, Seed: 42,
		BusinessFrac:    0.45,
		ResidentialFrac: 0.40,
		ZeroFrac:        0.03,
		ParetoAlpha:     2.0,
		NoiseLevel:      0.15,
		SpikeProb:       0.001,
		SpikeScale:      25,
		SeasonAmp:       0.3,
	}
}

// GeneratePhone synthesizes the calling-volume matrix.
//
// Important for the scale-up experiment (Figure 10 / Table 4): the first n
// rows of a larger configuration equal GeneratePhone of the smaller one, so
// "phone2000" really is a prefix of "phone100K" as in the paper. This holds
// because each row is generated from an RNG seeded per row.
func GeneratePhone(cfg PhoneConfig) *linalg.Matrix {
	x := linalg.NewMatrix(cfg.N, cfg.M)
	for i := 0; i < cfg.N; i++ {
		generatePhoneRow(cfg, i, x.Row(i))
	}
	return x
}

// generatePhoneRow fills row i deterministically from (Seed, i).
func generatePhoneRow(cfg PhoneConfig, i int, row []float64) {
	r := rand.New(rand.NewSource(cfg.Seed ^ (0x9e3779b9*int64(i) + 1)))

	u := r.Float64()
	switch {
	case u < cfg.ZeroFrac:
		for j := range row {
			row[j] = 0
		}
		return
	case u < cfg.ZeroFrac+cfg.BusinessFrac:
		fillPhonePattern(cfg, r, row, businessWeek)
	case u < cfg.ZeroFrac+cfg.BusinessFrac+cfg.ResidentialFrac:
		fillPhonePattern(cfg, r, row, residentialWeek)
	default:
		fillPhonePattern(cfg, r, row, mixedWeek)
	}
}

// Weekly base patterns (index = day mod 7, day 0 is a Monday).
var (
	businessWeek    = [7]float64{1.0, 1.05, 1.1, 1.05, 0.95, 0.08, 0.04}
	residentialWeek = [7]float64{0.15, 0.12, 0.15, 0.2, 0.45, 1.0, 0.9}
	mixedWeek       = [7]float64{0.6, 0.6, 0.65, 0.6, 0.7, 0.55, 0.5}
)

func fillPhonePattern(cfg PhoneConfig, r *rand.Rand, row []float64, week [7]float64) {
	// Pareto-distributed customer volume (heavy tail ⇒ Zipf-like skew).
	amp := 5 * math.Pow(1-r.Float64(), -1/cfg.ParetoAlpha)
	// Small per-customer phase/strength variation keeps rank > 2 but low.
	patternStrength := 0.85 + 0.3*r.Float64()
	for j := range row {
		season := 1 + cfg.SeasonAmp*math.Sin(2*math.Pi*float64(j)/366+r.Float64()*0.01)
		base := amp * (week[j%7]*patternStrength + 0.02) * season
		noise := math.Exp(r.NormFloat64() * cfg.NoiseLevel)
		v := base * noise
		if r.Float64() < cfg.SpikeProb {
			v += amp * cfg.SpikeScale * (0.5 + r.Float64())
		}
		if v < 0 {
			v = 0
		}
		row[j] = v
	}
}

// StocksConfig parameterizes the synthetic stock-closing-price matrix.
type StocksConfig struct {
	N, M int
	Seed int64
	// MarketVol is the daily volatility of the shared market factor;
	// IdioVol the stock-specific volatility. A high MarketVol/IdioVol
	// ratio yields the single dominant SVD direction of Figure 11.
	MarketVol float64
	IdioVol   float64
	// BetaSpread is the std-dev of the market loading across stocks.
	BetaSpread float64
}

// DefaultStocksConfig returns the paper's stocks dimensions: 381 stocks ×
// 128 trading days.
func DefaultStocksConfig() StocksConfig {
	return StocksConfig{
		N: 381, M: 128, Seed: 7,
		MarketVol:  0.012,
		IdioVol:    0.009,
		BetaSpread: 0.35,
	}
}

// GenerateStocks synthesizes the price matrix as geometric random walks with
// a common market factor.
func GenerateStocks(cfg StocksConfig) *linalg.Matrix {
	rm := rand.New(rand.NewSource(cfg.Seed))
	market := make([]float64, cfg.M)
	level := 0.0
	for t := range market {
		level += rm.NormFloat64()*cfg.MarketVol + 0.0004
		market[t] = level
	}
	x := linalg.NewMatrix(cfg.N, cfg.M)
	for i := 0; i < cfg.N; i++ {
		r := rand.New(rand.NewSource(cfg.Seed ^ (0x51ed2701*int64(i) + 3)))
		price := 10 + 90*r.Float64()
		beta := 1 + r.NormFloat64()*cfg.BetaSpread
		logp := math.Log(price)
		prevMarket := 0.0
		row := x.Row(i)
		for t := 0; t < cfg.M; t++ {
			mret := market[t] - prevMarket
			prevMarket = market[t]
			logp += beta*mret + r.NormFloat64()*cfg.IdioVol
			row[t] = math.Exp(logp)
		}
	}
	return x
}

// Toy returns the 7×5 customer-day matrix of Table 1 (the worked SVD example
// of Eq. 5): four weekday business callers and three weekend residential
// callers.
func Toy() *linalg.Matrix {
	return linalg.FromRows([][]float64{
		{1, 1, 1, 0, 0},
		{2, 2, 2, 0, 0},
		{1, 1, 1, 0, 0},
		{5, 5, 5, 0, 0},
		{0, 0, 0, 2, 2},
		{0, 0, 0, 3, 3},
		{0, 0, 0, 1, 1},
	})
}

// ToyRowLabels and ToyColLabels name the rows and columns of Toy, matching
// Table 1 of the paper.
var (
	ToyRowLabels = []string{"ABC Inc.", "DEF Ltd.", "GHI Inc.", "KLM Co.", "Smith", "Johnson", "Thompson"}
	ToyColLabels = []string{"We", "Th", "Fr", "Sa", "Su"}
)

// Subset returns a matrix view-copy of the first n rows of x, used to carve
// phone1000, phone2000, … out of phone100K exactly as the paper does.
func Subset(x *linalg.Matrix, n int) *linalg.Matrix {
	if n > x.Rows() {
		n = x.Rows()
	}
	out := linalg.NewMatrix(n, x.Cols())
	for i := 0; i < n; i++ {
		copy(out.Row(i), x.Row(i))
	}
	return out
}
