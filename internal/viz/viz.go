// Package viz implements the visualization of Appendix A: every time
// sequence is mapped to a point in the 2-dimensional SVD space (the first
// two columns of U·Λ), giving a scatter plot of the dataset's density and
// structure "essentially for free". The package renders an ASCII scatter
// plot and exports CSV for external plotting.
package viz

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"seqstore/internal/matio"
	"seqstore/internal/svd"
)

// Point is one sequence projected into SVD space.
type Point struct {
	X, Y float64 // coordinates along the 1st and 2nd principal components
	Row  int     // original row index
}

// ErrTooFewComponents is returned when the data has rank < 1.
var ErrTooFewComponents = errors.New("viz: data has no principal components")

// Project computes the 2-d SVD-space coordinates of every row of src. When
// the matrix has rank 1 the Y coordinates are all zero.
func Project(src matio.RowSource) ([]Point, error) {
	f, err := svd.ComputeFactors(src)
	if err != nil {
		return nil, err
	}
	if f.Rank() < 1 {
		return nil, ErrTooFewComponents
	}
	k := 2
	if f.Rank() < 2 {
		k = 1
	}
	n, _ := src.Dims()
	pts := make([]Point, n)
	err = svd.ComputeU(src, f, k, func(i int, urow []float64) error {
		// Coordinates are rows of U·Λ (Observation 3.4).
		p := Point{Row: i, X: urow[0] * f.Sigma[0]}
		if k == 2 {
			p.Y = urow[1] * f.Sigma[1]
		}
		pts[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Scatter renders the points as a width×height ASCII plot. Density is shown
// with the characters · : * # from sparse to dense; axes pass through zero
// when zero is inside the range.
func Scatter(pts []Point, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(pts) == 0 {
		return "(no points)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	counts := make([]int, width*height)
	for _, p := range pts {
		cx := int(float64(width-1) * (p.X - minX) / (maxX - minX))
		cy := int(float64(height-1) * (p.Y - minY) / (maxY - minY))
		counts[(height-1-cy)*width+cx]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pc2 ∈ [%.3g, %.3g]\n", minY, maxY)
	for r := 0; r < height; r++ {
		for c := 0; c < width; c++ {
			b.WriteByte(densityChar(counts[r*width+c]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "pc1 ∈ [%.3g, %.3g], %d points\n", minX, maxX, len(pts))
	return b.String()
}

func densityChar(n int) byte {
	switch {
	case n == 0:
		return ' '
	case n == 1:
		return '.'
	case n <= 3:
		return ':'
	case n <= 9:
		return '*'
	default:
		return '#'
	}
}

// WriteCSV emits "row,pc1,pc2" lines for external plotting tools.
func WriteCSV(w io.Writer, pts []Point) error {
	if _, err := fmt.Fprintln(w, "row,pc1,pc2"); err != nil {
		return fmt.Errorf("viz: write csv: %w", err)
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%g,%g\n", p.Row, p.X, p.Y); err != nil {
			return fmt.Errorf("viz: write csv: %w", err)
		}
	}
	return nil
}

// Outliers returns the indices of the no points with the largest distance
// from the centroid of the projection — Appendix A suggests an analyst
// examine exactly these exceptional sequences.
func Outliers(pts []Point, no int) []int {
	if no > len(pts) {
		no = len(pts)
	}
	if no <= 0 {
		return nil
	}
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	type scored struct {
		row  int
		dist float64
	}
	all := make([]scored, len(pts))
	for i, p := range pts {
		dx, dy := p.X-cx, p.Y-cy
		all[i] = scored{row: p.Row, dist: dx*dx + dy*dy}
	}
	// Partial selection sort for the top `no`.
	out := make([]int, 0, no)
	for len(out) < no {
		best := -1
		for i := range all {
			if all[i].dist < 0 {
				continue
			}
			if best < 0 || all[i].dist > all[best].dist {
				best = i
			}
		}
		out = append(out, all[best].row)
		all[best].dist = -1
	}
	return out
}
