package viz

import (
	"bytes"
	"strings"
	"testing"

	"seqstore/internal/dataset"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
)

func TestProjectToyMatrix(t *testing.T) {
	pts, err := Project(matio.NewMem(dataset.Toy()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("got %d points, want 7", len(pts))
	}
	// Business customers (rows 0-3) live on one axis, residential (4-6) on
	// the other: each point should have one near-zero coordinate.
	for i, p := range pts {
		if p.Row != i {
			t.Errorf("point %d has Row %d", i, p.Row)
		}
		ax, ay := abs(p.X), abs(p.Y)
		if ax > 1e-9 && ay > 1e-9 {
			t.Errorf("point %d = (%g,%g), expected one zero coordinate", i, p.X, p.Y)
		}
	}
	// KLM (row 3, volume 5/day) must be the farthest business point.
	if abs(pts[3].X)+abs(pts[3].Y) <= abs(pts[0].X)+abs(pts[0].Y) {
		t.Error("largest customer is not farthest from origin")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestProjectRank1(t *testing.T) {
	// Rank-1 data: all Y coordinates must be zero.
	x := linalg.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	pts, err := Project(matio.NewMem(x))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Y != 0 {
			t.Errorf("rank-1 projection has non-zero Y: %v", p.Y)
		}
	}
}

func TestProjectZeroMatrix(t *testing.T) {
	if _, err := Project(matio.NewMem(linalg.NewMatrix(3, 3))); err == nil {
		t.Error("rank-0 matrix accepted")
	}
}

func TestScatterRendering(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	out := Scatter(pts, 20, 10)
	if !strings.Contains(out, "3 points") {
		t.Errorf("missing point count in:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// header + 10 rows + footer + trailing empty
	if len(lines) != 13 {
		t.Errorf("got %d lines, want 13", len(lines))
	}
	if !strings.ContainsAny(out, ".:*#") {
		t.Error("no density glyphs rendered")
	}
}

func TestScatterEmptyAndDegenerate(t *testing.T) {
	if out := Scatter(nil, 10, 5); !strings.Contains(out, "no points") {
		t.Error("empty scatter should say so")
	}
	// Single point: ranges degenerate, must not panic or divide by zero.
	out := Scatter([]Point{{X: 5, Y: 5}}, 10, 5)
	if !strings.Contains(out, "1 points") {
		t.Error("single-point scatter failed")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Point{{Row: 0, X: 1.5, Y: -2}, {Row: 1, X: 0, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "row,pc1,pc2" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1.5,-2" {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestOutliers(t *testing.T) {
	pts := []Point{
		{Row: 0, X: 0, Y: 0},
		{Row: 1, X: 0.1, Y: 0},
		{Row: 2, X: 100, Y: 0}, // the outlier
		{Row: 3, X: 0, Y: 0.1},
	}
	out := Outliers(pts, 1)
	if len(out) != 1 || out[0] != 2 {
		t.Errorf("Outliers = %v, want [2]", out)
	}
	if got := Outliers(pts, 10); len(got) != 4 {
		t.Errorf("Outliers should clamp to len(pts), got %d", len(got))
	}
	if got := Outliers(pts, 0); got != nil {
		t.Errorf("Outliers(0) = %v, want nil", got)
	}
	// Ordering: farthest first.
	two := Outliers(pts, 2)
	if two[0] != 2 {
		t.Errorf("first outlier = %d, want 2", two[0])
	}
}

func TestProjectPhoneSkew(t *testing.T) {
	// Figure 11 (left): most phone points concentrate near the origin with
	// a few far-out exceptions.
	x := dataset.GeneratePhone(dataset.DefaultPhoneConfig(400))
	pts, err := Project(matio.NewMem(x))
	if err != nil {
		t.Fatal(err)
	}
	var maxD, sumD float64
	for _, p := range pts {
		d := p.X*p.X + p.Y*p.Y
		sumD += d
		if d > maxD {
			maxD = d
		}
	}
	avg := sumD / float64(len(pts))
	if maxD < 10*avg {
		t.Errorf("expected skewed projection: max %g vs avg %g", maxD, avg)
	}
}
