package vq

import (
	"fmt"

	"seqstore/internal/linalg"
	"seqstore/internal/seqerr"
	"seqstore/internal/store"
)

// Store is the vector-quantization representation (§2.2): c cluster
// representatives of length M plus one cluster reference per row. Looking
// up cell (i, j) returns entry j of row i's representative — O(1)
// reconstruction, at the cost of every member of a cluster reconstructing
// to the same sequence.
type Store struct {
	rows, cols int
	assign     []int32        // per-row cluster label, len rows
	centroids  *linalg.Matrix // c×cols representatives
}

// NewStore builds the VQ store for x under the given assignment into c
// clusters; the representative of each cluster is the centroid of its
// members.
func NewStore(x *linalg.Matrix, assign []int32, c int) (*Store, error) {
	n, m := x.Dims()
	if len(assign) != n {
		return nil, fmt.Errorf("cluster: %d labels for %d rows", len(assign), n)
	}
	if c < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 cluster, got %d", c)
	}
	centroids := linalg.NewMatrix(c, m)
	counts := make([]int, c)
	for i := 0; i < n; i++ {
		l := assign[i]
		if l < 0 || int(l) >= c {
			return nil, fmt.Errorf("cluster: label %d out of range [0,%d)", l, c)
		}
		counts[l]++
		crow := centroids.Row(int(l))
		for j, v := range x.Row(i) {
			crow[j] += v
		}
	}
	for cc := 0; cc < c; cc++ {
		if counts[cc] == 0 {
			continue
		}
		row := centroids.Row(cc)
		inv := 1 / float64(counts[cc])
		for j := range row {
			row[j] *= inv
		}
	}
	labels := make([]int32, n)
	copy(labels, assign)
	return &Store{rows: n, cols: m, assign: labels, centroids: centroids}, nil
}

// Compress builds the hierarchy for x, cuts it at c clusters, and returns
// the VQ store. When evaluating many cluster counts on the same data, build
// the hierarchy once with Build and call Cut/NewStore per count instead.
func Compress(x *linalg.Matrix, c int) (*Store, error) {
	h, err := Build(x)
	if err != nil {
		return nil, err
	}
	return NewStore(x, h.Cut(c), clampC(c, x.Rows()))
}

// CForBudget returns the largest cluster count whose representation
// (c·M + N stored numbers, §5.1) fits the given fraction of N·M.
func CForBudget(n, m int, budget float64) int {
	if n <= 0 || m <= 0 || budget <= 0 {
		return 0
	}
	c := int((budget*float64(n)*float64(m) - float64(n)) / float64(m))
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	return c
}

func clampC(c, n int) int {
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// Dims returns the dimensions of the represented matrix.
func (s *Store) Dims() (int, int) { return s.rows, s.cols }

// Method returns store.MethodCluster.
func (s *Store) Method() store.Method { return store.MethodCluster }

// Clusters returns the number of representatives.
func (s *Store) Clusters() int { return s.centroids.Rows() }

// Assignment returns row i's cluster label.
func (s *Store) Assignment(i int) (int, error) {
	if i < 0 || i >= s.rows {
		return 0, fmt.Errorf("cluster: row %d out of range %d (%w)", i, s.rows, seqerr.ErrOutOfRange)
	}
	return int(s.assign[i]), nil
}

// Cell returns the j-th entry of row i's representative.
func (s *Store) Cell(i, j int) (float64, error) {
	if i < 0 || i >= s.rows {
		return 0, fmt.Errorf("cluster: row %d out of range %d (%w)", i, s.rows, seqerr.ErrOutOfRange)
	}
	if j < 0 || j >= s.cols {
		return 0, fmt.Errorf("cluster: column %d out of range %d (%w)", j, s.cols, seqerr.ErrOutOfRange)
	}
	return s.centroids.At(int(s.assign[i]), j), nil
}

// Row copies row i's representative into dst.
func (s *Store) Row(i int, dst []float64) ([]float64, error) {
	if i < 0 || i >= s.rows {
		return nil, fmt.Errorf("cluster: row %d out of range %d (%w)", i, s.rows, seqerr.ErrOutOfRange)
	}
	if cap(dst) < s.cols {
		dst = make([]float64, s.cols)
	}
	dst = dst[:s.cols]
	copy(dst, s.centroids.Row(int(s.assign[i])))
	return dst, nil
}

// StoredNumbers returns c·M + N: the representatives plus one cluster
// reference per row (each counted as one stored number, as in §5.1).
func (s *Store) StoredNumbers() int64 {
	return int64(s.centroids.Rows())*int64(s.cols) + int64(s.rows)
}

// EncodePayload serializes dims, assignments and centroids.
func (s *Store) EncodePayload(w *store.Writer) error {
	w.U64(uint64(s.rows))
	w.U64(uint64(s.cols))
	w.U64(uint64(s.centroids.Rows()))
	w.I32Slice(s.assign)
	w.F64Slice(s.centroids.Data())
	return w.Err()
}

func decode(r *store.Reader) (store.Store, error) {
	rows := int(r.U64())
	cols := int(r.U64())
	c := int(r.U64())
	assign := r.I32Slice()
	cdata := r.F64Slice()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || c < 1 || !store.DimsSane(rows, cols, c) ||
		len(assign) != rows || len(cdata) != c*cols {
		return nil, fmt.Errorf("%w: cluster header inconsistent", store.ErrCorrupt)
	}
	for _, l := range assign {
		if l < 0 || int(l) >= c {
			return nil, fmt.Errorf("%w: cluster label %d out of range", store.ErrCorrupt, l)
		}
	}
	return &Store{rows: rows, cols: cols, assign: assign,
		centroids: linalg.NewMatrixFrom(c, cols, cdata)}, nil
}

func init() {
	store.RegisterCodec(store.MethodCluster, decode)
}

var _ store.Encoder = (*Store)(nil)
