package vq

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seqstore/internal/dataset"
	"seqstore/internal/linalg"
	"seqstore/internal/store"
)

// twoBlobs builds points in two well-separated groups.
func twoBlobs(r *rand.Rand, nPer int) *linalg.Matrix {
	x := linalg.NewMatrix(2*nPer, 3)
	for i := 0; i < nPer; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.NormFloat64()*0.1)
			x.Set(nPer+i, j, 10+r.NormFloat64()*0.1)
		}
	}
	return x
}

func TestBuildSingleItem(t *testing.T) {
	h, err := Build(linalg.NewMatrix(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 1 || len(h.Merges()) != 0 {
		t.Error("single item should produce an empty dendrogram")
	}
	labels := h.Cut(1)
	if len(labels) != 1 || labels[0] != 0 {
		t.Errorf("labels = %v", labels)
	}
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(linalg.NewMatrix(0, 2)); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestBuildMergeCount(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := twoBlobs(r, 8)
	h, err := Build(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Merges()); got != 15 {
		t.Errorf("merges = %d, want n-1 = 15", got)
	}
}

func TestCutSeparatesBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := twoBlobs(r, 10)
	h, err := Build(x)
	if err != nil {
		t.Fatal(err)
	}
	labels := h.Cut(2)
	// All of blob 1 must share one label, blob 2 the other.
	for i := 1; i < 10; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("blob 1 split: labels[%d]=%d vs %d", i, labels[i], labels[0])
		}
	}
	for i := 11; i < 20; i++ {
		if labels[i] != labels[10] {
			t.Fatalf("blob 2 split")
		}
	}
	if labels[0] == labels[10] {
		t.Error("blobs merged at c=2")
	}
}

func TestCutLabelCount(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := twoBlobs(r, 12)
	h, _ := Build(x)
	for _, c := range []int{1, 2, 3, 5, 24} {
		labels := h.Cut(c)
		distinct := map[int32]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != c {
			t.Errorf("Cut(%d) produced %d distinct labels", c, len(distinct))
		}
		for _, l := range labels {
			if l < 0 || int(l) >= c {
				t.Fatalf("label %d out of range at c=%d", l, c)
			}
		}
	}
	// Clamping.
	if got := h.Cut(0); len(got) != 24 {
		t.Error("Cut(0) should clamp to 1 cluster")
	}
	if got := h.Cut(100); len(got) != 24 {
		t.Error("Cut(100) should clamp to n clusters")
	}
}

func TestCutMonotoneRefinement(t *testing.T) {
	// Cutting at more clusters must refine (never merge) the coarser cut.
	r := rand.New(rand.NewSource(4))
	x := twoBlobs(r, 10)
	h, _ := Build(x)
	coarse := h.Cut(3)
	fine := h.Cut(6)
	// Two items in the same fine cluster must share a coarse cluster.
	for i := range fine {
		for j := i + 1; j < len(fine); j++ {
			if fine[i] == fine[j] && coarse[i] != coarse[j] {
				t.Fatalf("refinement violated for items %d,%d", i, j)
			}
		}
	}
}

func TestToyMatrixClusters(t *testing.T) {
	// The toy matrix has 4 weekday and 3 weekend customers; cutting at 2
	// should recover exactly that split... except the weekday callers have
	// very different volumes (1,2,1,5). Complete linkage on raw distances
	// groups by magnitude, so just check determinism and label validity.
	x := dataset.Toy()
	h, err := Build(x)
	if err != nil {
		t.Fatal(err)
	}
	a := h.Cut(2)
	b := h.Cut(2)
	for i := range a {
		if a[i] != b[i] {
			t.Error("Cut not deterministic")
		}
	}
}

func TestNewStoreCentroids(t *testing.T) {
	x := linalg.FromRows([][]float64{{0, 0}, {2, 2}, {10, 10}})
	s, err := NewStore(x, []int32{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Cell(0, 0)
	if v != 1 {
		t.Errorf("centroid of {0,2} = %v, want 1", v)
	}
	v, _ = s.Cell(2, 1)
	if v != 10 {
		t.Errorf("singleton centroid = %v, want 10", v)
	}
	if s.Clusters() != 2 {
		t.Errorf("Clusters = %d", s.Clusters())
	}
	if l, _ := s.Assignment(1); l != 0 {
		t.Errorf("Assignment(1) = %d", l)
	}
}

func TestNewStoreValidation(t *testing.T) {
	x := linalg.NewMatrix(2, 2)
	if _, err := NewStore(x, []int32{0}, 1); err == nil {
		t.Error("wrong label count accepted")
	}
	if _, err := NewStore(x, []int32{0, 5}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := NewStore(x, []int32{0, 0}, 0); err == nil {
		t.Error("zero clusters accepted")
	}
}

func TestStoreRowAndErrors(t *testing.T) {
	x := linalg.FromRows([][]float64{{1, 2}, {3, 4}})
	s, _ := NewStore(x, []int32{0, 1}, 2)
	row, err := s.Row(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 3 || row[1] != 4 {
		t.Errorf("Row = %v", row)
	}
	if _, err := s.Row(5, nil); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := s.Cell(0, 9); err == nil {
		t.Error("col out of range accepted")
	}
	if _, err := s.Assignment(-1); err == nil {
		t.Error("Assignment out of range accepted")
	}
}

func TestStoredNumbers(t *testing.T) {
	x := linalg.NewMatrix(10, 4)
	s, _ := NewStore(x, make([]int32, 10), 3)
	if got := s.StoredNumbers(); got != 3*4+10 {
		t.Errorf("StoredNumbers = %d, want 22", got)
	}
}

func TestCForBudget(t *testing.T) {
	// n=100, m=10, budget 0.5 → numbers 500; minus N=100 → 400/10 = 40.
	if got := CForBudget(100, 10, 0.5); got != 40 {
		t.Errorf("CForBudget = %d, want 40", got)
	}
	if CForBudget(100, 10, 0.0) != 0 {
		t.Error("zero budget")
	}
	if got := CForBudget(10, 10, 1.0); got != 9 {
		t.Errorf("full budget c = %d, want 9", got)
	}
}

func TestCompressReconstructionImproves(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := twoBlobs(r, 15)
	sse := func(c int) float64 {
		s, err := Compress(x, c)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for i := 0; i < x.Rows(); i++ {
			row, _ := s.Row(i, nil)
			for j := range row {
				d := row[j] - x.At(i, j)
				total += d * d
			}
		}
		return total
	}
	if sse(2) >= sse(1) {
		t.Error("2 clusters should fit better than 1")
	}
	if full := sse(30); full > 1e-18 {
		t.Errorf("n clusters should be exact, SSE = %g", full)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x := twoBlobs(r, 6)
	s, err := Compress(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := store.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method() != store.MethodCluster {
		t.Errorf("method = %v", got.Method())
	}
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			a, _ := s.Cell(i, j)
			b, err := got.Cell(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatal("cell differs after round trip")
			}
		}
	}
}

func TestKMeansBasic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := twoBlobs(r, 20)
	labels, err := KMeans(x, 2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20; i++ {
		if labels[i] != labels[0] {
			t.Fatal("k-means split blob 1")
		}
	}
	if labels[20] == labels[0] {
		t.Error("k-means merged the blobs")
	}
}

func TestKMeansValidation(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	if _, err := KMeans(x, 0, 10, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := KMeans(x, 4, 10, 1); err == nil {
		t.Error("c>n accepted")
	}
	if _, err := KMeans(linalg.NewMatrix(0, 2), 1, 10, 1); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	x := twoBlobs(r, 10)
	a, _ := KMeans(x, 3, 50, 42)
	b, _ := KMeans(x, 3, 50, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

// Property: cutting at n clusters is the identity partition and yields
// exact reconstruction.
func TestCutAtNExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		x := linalg.NewMatrix(n, 3)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, r.NormFloat64()*5)
			}
		}
		h, err := Build(x)
		if err != nil {
			return false
		}
		labels := h.Cut(n)
		s, err := NewStore(x, labels, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				v, _ := s.Cell(i, j)
				if math.Abs(v-x.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: merge heights from the chain, when sorted, are the dendrogram
// heights; every Cut level yields a valid partition.
func TestAllCutsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		x := linalg.NewMatrix(n, 2)
		for i := 0; i < n; i++ {
			x.Set(i, 0, r.NormFloat64())
			x.Set(i, 1, r.NormFloat64())
		}
		h, err := Build(x)
		if err != nil {
			return false
		}
		for c := 1; c <= n; c++ {
			labels := h.Cut(c)
			distinct := map[int32]bool{}
			for _, l := range labels {
				distinct[l] = true
			}
			if len(distinct) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
