// Package vq implements the clustering baseline of the paper (§2.2):
// agglomerative hierarchical clustering with the "maximum distance"
// element-to-cluster rule (complete linkage) over Euclidean distances — the
// same high-quality quadratic method the paper used from the 'S' package —
// plus a vector-quantization Store whose representative rows reconstruct
// the members of each cluster. A k-means alternative is provided for
// reference.
//
// The hierarchy is built once (O(N²·M) distances + O(N²) nearest-neighbor
// chain) and can then be cut at any number of clusters, which is how the
// accuracy-vs-space sweep of Figure 6 evaluates many storage sizes without
// re-clustering. As the paper observes, the quadratic cost is exactly why
// clustering fails to scale past a few thousand rows (§5.3).
package vq

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"seqstore/internal/linalg"
)

// Merge records one agglomeration step: the representative leaf indices of
// the two clusters merged and the complete-linkage distance at which they
// merged.
type Merge struct {
	A, B int
	Dist float64
}

// Hierarchy is a full agglomerative dendrogram over n items.
type Hierarchy struct {
	n      int
	merges []Merge // in nearest-neighbor-chain order
}

// ErrTooFewItems is returned when clustering fewer than one item.
var ErrTooFewItems = errors.New("cluster: need at least one item")

// Build computes the complete-linkage hierarchy of the rows of x using the
// nearest-neighbor chain algorithm (complete linkage is reducible, so the
// chain algorithm produces the exact dendrogram in O(N²) after the distance
// matrix).
func Build(x *linalg.Matrix) (*Hierarchy, error) {
	n := x.Rows()
	if n < 1 {
		return nil, ErrTooFewItems
	}
	if n == 1 {
		return &Hierarchy{n: 1}, nil
	}

	// Pairwise squared Euclidean distances via the norm/dot expansion.
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		norms[i] = linalg.Dot(r, r)
	}
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		for j := i + 1; j < n; j++ {
			v := norms[i] + norms[j] - 2*linalg.Dot(ri, x.Row(j))
			if v < 0 {
				v = 0
			}
			d[i*n+j] = v
			d[j*n+i] = v
		}
	}

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := n
	chain := make([]int, 0, n)
	merges := make([]Merge, 0, n-1)
	scan := 0 // next index to try when the chain is empty

	for remaining > 1 {
		if len(chain) == 0 {
			for !active[scan] {
				scan++
			}
			chain = append(chain, scan)
		}
		a := chain[len(chain)-1]
		// Nearest active neighbor of a; prefer the chain predecessor on
		// ties so reciprocal pairs are detected and the chain terminates.
		best, bd := -1, math.Inf(1)
		if len(chain) >= 2 {
			best = chain[len(chain)-2]
			bd = d[a*n+best]
		}
		arow := d[a*n : (a+1)*n]
		for b := 0; b < n; b++ {
			if b != a && active[b] && arow[b] < bd {
				best, bd = b, arow[b]
			}
		}
		if len(chain) >= 2 && best == chain[len(chain)-2] {
			// Reciprocal nearest neighbors: merge best into a.
			merges = append(merges, Merge{A: a, B: best, Dist: math.Sqrt(bd)})
			brow := d[best*n : (best+1)*n]
			for t := 0; t < n; t++ {
				if t != a && t != best && active[t] {
					// Complete linkage: D(a∪b, t) = max(D(a,t), D(b,t)).
					if brow[t] > arow[t] {
						arow[t] = brow[t]
						d[t*n+a] = brow[t]
					}
				}
			}
			active[best] = false
			remaining--
			chain = chain[:len(chain)-2]
		} else {
			chain = append(chain, best)
		}
	}
	return &Hierarchy{n: n, merges: merges}, nil
}

// N returns the number of clustered items.
func (h *Hierarchy) N() int { return h.n }

// Merges returns the merge list (a copy) in chain order.
func (h *Hierarchy) Merges() []Merge {
	out := make([]Merge, len(h.merges))
	copy(out, h.merges)
	return out
}

// Cut truncates the dendrogram at c clusters and returns a label per item
// in [0, c). Labels are assigned in order of first appearance. c is clamped
// to [1, n].
func (h *Hierarchy) Cut(c int) []int32 {
	if c < 1 {
		c = 1
	}
	if c > h.n {
		c = h.n
	}
	parent := make([]int32, h.n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	// Apply the n−c lowest merges (complete linkage heights are monotone
	// along the tree, so this equals cutting at a height threshold).
	sorted := make([]Merge, len(h.merges))
	copy(sorted, h.merges)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Dist < sorted[j].Dist })
	for t := 0; t < h.n-c; t++ {
		ra, rb := find(int32(sorted[t].A)), find(int32(sorted[t].B))
		if ra != rb {
			parent[rb] = ra
		}
	}
	labels := make([]int32, h.n)
	next := int32(0)
	seen := make(map[int32]int32, c)
	for i := 0; i < h.n; i++ {
		r := find(int32(i))
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// KMeans clusters the rows of x into c clusters with Lloyd's algorithm and
// k-means++ seeding. It returns per-row labels in [0, c). Deterministic for
// a given seed. Provided as the faster-but-approximate alternative the
// paper mentions (§2.2).
func KMeans(x *linalg.Matrix, c int, maxIter int, seed int64) ([]int32, error) {
	n, m := x.Dims()
	if n < 1 {
		return nil, ErrTooFewItems
	}
	if c < 1 || c > n {
		return nil, fmt.Errorf("cluster: k-means needs 1 ≤ c ≤ %d, got %d", n, c)
	}
	if maxIter < 1 {
		maxIter = 50
	}
	rng := newSplitMix(uint64(seed))

	// k-means++ seeding.
	centers := linalg.NewMatrix(c, m)
	first := int(rng.next() % uint64(n))
	copy(centers.Row(0), x.Row(first))
	dist2 := make([]float64, n)
	for i := range dist2 {
		dist2[i] = sqDist(x.Row(i), centers.Row(0))
	}
	for cc := 1; cc < c; cc++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		pick := 0
		if total > 0 {
			target := (float64(rng.next()%(1<<53)) / (1 << 53)) * total
			acc := 0.0
			for i, v := range dist2 {
				acc += v
				if acc >= target {
					pick = i
					break
				}
			}
		} else {
			pick = int(rng.next() % uint64(n))
		}
		copy(centers.Row(cc), x.Row(pick))
		for i := range dist2 {
			if v := sqDist(x.Row(i), centers.Row(cc)); v < dist2[i] {
				dist2[i] = v
			}
		}
	}

	labels := make([]int32, n)
	counts := make([]int, c)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bd := int32(0), math.Inf(1)
			for cc := 0; cc < c; cc++ {
				if v := sqDist(x.Row(i), centers.Row(cc)); v < bd {
					best, bd = int32(cc), v
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		for cc := 0; cc < c; cc++ {
			counts[cc] = 0
			row := centers.Row(cc)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			counts[labels[i]]++
			crow := centers.Row(int(labels[i]))
			for j, v := range x.Row(i) {
				crow[j] += v
			}
		}
		for cc := 0; cc < c; cc++ {
			if counts[cc] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers.Row(cc), x.Row(int(rng.next()%uint64(n))))
				continue
			}
			row := centers.Row(cc)
			inv := 1 / float64(counts[cc])
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return labels, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// splitMix is a tiny deterministic RNG so k-means does not depend on global
// rand state.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
