package wavelet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seqstore/internal/dataset"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
	"seqstore/internal/store"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestForwardInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 2, 3, 7, 8, 16, 33, 100} {
		row := make([]float64, m)
		for j := range row {
			row[j] = r.NormFloat64() * 10
		}
		got := Inverse(Forward(row), m)
		for j := range row {
			if !almostEqual(got[j], row[j], 1e-10) {
				t.Fatalf("m=%d: round trip failed at %d: %v vs %v", m, j, got[j], row[j])
			}
		}
	}
}

func TestForwardParseval(t *testing.T) {
	// The orthonormal Haar transform preserves energy of the padded
	// signal (zero padding adds none).
	r := rand.New(rand.NewSource(2))
	row := make([]float64, 24)
	for j := range row {
		row[j] = r.NormFloat64()
	}
	coef := Forward(row)
	if !almostEqual(linalg.Norm2(row), linalg.Norm2(coef), 1e-10) {
		t.Errorf("energy not preserved: %v vs %v", linalg.Norm2(row), linalg.Norm2(coef))
	}
}

func TestBasisValueMatchesTransform(t *testing.T) {
	// Reconstructing cell j via basisValue over all coefficients must
	// equal the inverse transform.
	r := rand.New(rand.NewSource(3))
	const m = 16
	row := make([]float64, m)
	for j := range row {
		row[j] = r.NormFloat64() * 5
	}
	coef := Forward(row)
	for j := 0; j < m; j++ {
		var x float64
		for c := range coef {
			x += coef[c] * basisValue(c, j, m)
		}
		if !almostEqual(x, row[j], 1e-9) {
			t.Fatalf("cell %d: basis sum %v != %v", j, x, row[j])
		}
	}
}

func TestCoefIndicesCoverExactlySupports(t *testing.T) {
	const p = 32
	for j := 0; j < p; j++ {
		indices := map[int]bool{}
		for _, c := range coefIndicesFor(j, p) {
			indices[c] = true
		}
		for c := 0; c < p; c++ {
			nz := basisValue(c, j, p) != 0
			if nz && !indices[c] {
				t.Fatalf("j=%d: coefficient %d non-zero but not listed", j, c)
			}
			if !nz && indices[c] {
				t.Fatalf("j=%d: coefficient %d listed but zero", j, c)
			}
		}
	}
}

func TestCompressFullTExact(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := linalg.NewMatrix(10, 20)
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			x.Set(i, j, r.NormFloat64()*10)
		}
	}
	s, err := Compress(matio.NewMem(x), 32) // padded length
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		row, err := s.Row(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range row {
			if !almostEqual(row[j], x.At(i, j), 1e-9) {
				t.Fatalf("full-t reconstruction not exact at (%d,%d)", i, j)
			}
		}
	}
}

func TestCellMatchesRow(t *testing.T) {
	x := dataset.GeneratePhone(dataset.PhoneConfig{
		N: 15, M: 50, Seed: 5, BusinessFrac: 0.5, ResidentialFrac: 0.4,
		ParetoAlpha: 2, NoiseLevel: 0.2, SeasonAmp: 0.2,
	})
	s, err := Compress(matio.NewMem(x), 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i += 3 {
		row, err := s.Row(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j += 7 {
			c, err := s.Cell(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(c, row[j], 1e-10) {
				t.Fatalf("Cell/Row disagree at (%d,%d): %v vs %v", i, j, c, row[j])
			}
		}
	}
}

func TestRangeChecks(t *testing.T) {
	x := linalg.NewMatrix(3, 4)
	x.Set(0, 0, 1)
	s, err := Compress(matio.NewMem(x), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cell(3, 0); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := s.Cell(0, 4); err == nil {
		t.Error("col out of range accepted")
	}
	if _, err := s.Row(-1, nil); err == nil {
		t.Error("negative row accepted")
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Compress(matio.NewMem(linalg.NewMatrix(0, 4)), 2); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestTForBudget(t *testing.T) {
	// Each kept coefficient costs 2 numbers, so budget·M/2 per row.
	if got := TForBudget(100, 0.10); got != 5 {
		t.Errorf("TForBudget = %d, want 5", got)
	}
	if TForBudget(100, 0) != 0 {
		t.Error("zero budget")
	}
	if got := TForBudget(100, 10); got != 128 {
		t.Errorf("huge budget should clamp to padded length, got %d", got)
	}
}

func TestStoredNumbers(t *testing.T) {
	x := linalg.NewMatrix(4, 8)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			x.Set(i, j, float64(i+j+1))
		}
	}
	s, _ := Compress(matio.NewMem(x), 3)
	if s.StoredNumbers() != 4*3*2 {
		t.Errorf("StoredNumbers = %d, want 24", s.StoredNumbers())
	}
}

func TestErrorMonotoneInT(t *testing.T) {
	x := dataset.GenerateStocks(dataset.StocksConfig{N: 8, M: 30, Seed: 6, MarketVol: 0.01, IdioVol: 0.01, BetaSpread: 0.2})
	mem := matio.NewMem(x)
	prev := math.Inf(1)
	for tt := 0; tt <= 32; tt += 4 {
		s, err := Compress(mem, tt)
		if err != nil {
			t.Fatal(err)
		}
		var sse float64
		for i := 0; i < 8; i++ {
			row, _ := s.Row(i, nil)
			for j := range row {
				d := row[j] - x.At(i, j)
				sse += d * d
			}
		}
		if sse > prev+1e-9 {
			t.Fatalf("SSE increased at t=%d", tt)
		}
		prev = sse
	}
}

func TestLargestCoefficientsBeatFirstK(t *testing.T) {
	// On spiky data with localized features, keep-largest (wavelet)
	// should beat keep-first-k of the same transform. Verify the kept set
	// is actually the largest by magnitude.
	r := rand.New(rand.NewSource(7))
	row := make([]float64, 64)
	for j := range row {
		row[j] = r.NormFloat64()
	}
	row[37] = 100 // a localized spike
	x := linalg.NewMatrixFrom(1, 64, row)
	s, err := Compress(matio.NewMem(x), 8)
	if err != nil {
		t.Fatal(err)
	}
	coef := Forward(row)
	kept := map[uint32]bool{}
	for _, c := range s.idx[0] {
		kept[c] = true
	}
	// Every kept coefficient must be ≥ every dropped one in magnitude.
	minKept := math.Inf(1)
	for _, c := range s.idx[0] {
		if v := math.Abs(coef[c]); v < minKept {
			minKept = v
		}
	}
	for c, v := range coef {
		if !kept[uint32(c)] && math.Abs(v) > minKept+1e-12 {
			t.Fatalf("dropped coefficient %d (%v) larger than kept minimum %v", c, v, minKept)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	x := dataset.GenerateStocks(dataset.StocksConfig{N: 6, M: 20, Seed: 8, MarketVol: 0.01, IdioVol: 0.01, BetaSpread: 0.2})
	s, err := Compress(matio.NewMem(x), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := store.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method() != store.MethodWavelet {
		t.Errorf("method = %v", got.Method())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 20; j++ {
			a, _ := s.Cell(i, j)
			b, err := got.Cell(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatal("cell differs after round trip")
			}
		}
	}
}

// Property: forward/inverse round-trips any row.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(50)
		row := make([]float64, m)
		for j := range row {
			row[j] = r.NormFloat64() * 100
		}
		got := Inverse(Forward(row), m)
		for j := range row {
			if !almostEqual(got[j], row[j], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
