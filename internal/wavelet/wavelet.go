// Package wavelet implements the other spectral baseline the paper's
// survey names (§2.3, "a plethora of other techniques, such as wavelets"):
// per-row orthonormal Haar wavelet compression.
//
// Unlike DCT (which keeps the k lowest frequencies), the standard wavelet
// recipe keeps the k *largest-magnitude* coefficients of each row, paying
// one extra stored number per coefficient for its index. Because each Haar
// basis function has dyadic support, a single cell is covered by only
// log₂(M)+1 basis functions, so random access costs O(log M · log k)
// lookups — no full-row reconstruction needed, preserving the paper's
// random-access requirement.
package wavelet

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"seqstore/internal/matio"
	"seqstore/internal/pqueue"
	"seqstore/internal/seqerr"
	"seqstore/internal/store"
)

// ErrEmptyMatrix is returned when compressing an empty matrix.
var ErrEmptyMatrix = errors.New("wavelet: empty matrix")

// pow2Ceil returns the smallest power of two ≥ n (n ≥ 1).
func pow2Ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Forward computes the orthonormal Haar transform of row (length m),
// zero-padded to the next power of two. The returned slice has length
// pow2Ceil(m); index 0 is the scaling coefficient, indices [2^l, 2^(l+1))
// are the level-l wavelet coefficients.
func Forward(row []float64) []float64 {
	p := pow2Ceil(len(row))
	work := make([]float64, p)
	copy(work, row)
	out := make([]float64, p)
	n := p
	for n > 1 {
		half := n / 2
		for q := 0; q < half; q++ {
			a, b := work[2*q], work[2*q+1]
			work[q] = (a + b) / math.Sqrt2
			// Detail coefficients for this level land at [half, n).
			out[half+q] = (a - b) / math.Sqrt2
		}
		n = half
	}
	out[0] = work[0]
	return out
}

// Inverse reconstructs the first m samples from a full Haar coefficient
// vector of power-of-two length.
func Inverse(coef []float64, m int) []float64 {
	p := len(coef)
	work := make([]float64, p)
	work[0] = coef[0]
	n := 1
	for n < p {
		// Expand [0, n) smooth + [n, 2n) detail into [0, 2n).
		next := make([]float64, 2*n)
		for q := 0; q < n; q++ {
			s, d := work[q], coef[n+q]
			next[2*q] = (s + d) / math.Sqrt2
			next[2*q+1] = (s - d) / math.Sqrt2
		}
		copy(work, next)
		n *= 2
	}
	return work[:m]
}

// basisValue returns ψ_idx(j), the value of the Haar basis function with
// coefficient index idx at sample j, for signal length p (a power of two).
func basisValue(idx, j, p int) float64 {
	if idx == 0 {
		return 1 / math.Sqrt(float64(p))
	}
	// Find the level: idx ∈ [n, 2n) where n = 2^l describes level l with
	// n blocks of size p/n.
	n := 1
	for idx >= 2*n {
		n *= 2
	}
	q := idx - n
	block := p / n
	if j/block != q {
		return 0
	}
	amp := math.Sqrt(float64(n) / float64(p))
	if j%block < block/2 {
		return amp
	}
	return -amp
}

// coefIndicesFor returns the coefficient indices whose basis functions are
// non-zero at sample j: the scaling function plus one wavelet per level.
func coefIndicesFor(j, p int) []int {
	out := make([]int, 0, 1+log2(p))
	out = append(out, 0)
	for n := 1; n < p; n *= 2 {
		block := p / n
		out = append(out, n+j/block)
	}
	return out
}

func log2(p int) int {
	l := 0
	for 1<<l < p {
		l++
	}
	return l
}

// Store is the wavelet-compressed representation: per row, the t
// largest-magnitude Haar coefficients as (index, value) pairs sorted by
// index.
type Store struct {
	rows, cols int
	p          int // padded length
	t          int // coefficients kept per row
	idx        [][]uint32
	val        [][]float64
}

// TForBudget returns the per-row coefficient count t whose cost (2·t
// numbers per row: value + index) fits the budget fraction, clamped to
// [0, pow2Ceil(m)].
func TForBudget(m int, budget float64) int {
	if budget <= 0 || m <= 0 {
		return 0
	}
	t := int(budget * float64(m) / 2)
	if p := pow2Ceil(m); t > p {
		t = p
	}
	return t
}

// Compress keeps the t largest-magnitude coefficients of each row, in a
// single pass over src.
func Compress(src matio.RowSource, t int) (*Store, error) {
	n, m := src.Dims()
	if n == 0 || m == 0 {
		return nil, ErrEmptyMatrix
	}
	p := pow2Ceil(m)
	if t < 0 {
		t = 0
	}
	if t > p {
		t = p
	}
	s := &Store{rows: n, cols: m, p: p, t: t,
		idx: make([][]uint32, n), val: make([][]float64, n)}
	err := src.ScanRows(func(i int, row []float64) error {
		coef := Forward(row)
		q := pqueue.NewTopK(t)
		for c, v := range coef {
			if v != 0 {
				q.Offer(pqueue.Item{Col: c, Delta: v})
			}
		}
		items := q.Items()
		sort.Slice(items, func(a, b int) bool { return items[a].Col < items[b].Col })
		s.idx[i] = make([]uint32, len(items))
		s.val[i] = make([]float64, len(items))
		for k, it := range items {
			s.idx[i][k] = uint32(it.Col)
			s.val[i][k] = it.Delta
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("wavelet: transform pass: %w", err)
	}
	return s, nil
}

// CompressBudget builds a wavelet store within the given space fraction.
func CompressBudget(src matio.RowSource, budget float64) (*Store, error) {
	_, m := src.Dims()
	return Compress(src, TForBudget(m, budget))
}

// Dims returns the dimensions of the represented matrix.
func (s *Store) Dims() (int, int) { return s.rows, s.cols }

// Method returns store.MethodWavelet.
func (s *Store) Method() store.Method { return store.MethodWavelet }

// T returns the number of coefficients kept per row.
func (s *Store) T() int { return s.t }

// coefAt returns the stored coefficient c of row i, or 0 (binary search).
func (s *Store) coefAt(i, c int) float64 {
	idx := s.idx[i]
	k := sort.Search(len(idx), func(k int) bool { return idx[k] >= uint32(c) })
	if k < len(idx) && idx[k] == uint32(c) {
		return s.val[i][k]
	}
	return 0
}

// Cell reconstructs x̂[i][j] from the ≤ log₂(p)+1 basis functions covering
// sample j.
func (s *Store) Cell(i, j int) (float64, error) {
	if i < 0 || i >= s.rows {
		return 0, fmt.Errorf("wavelet: row %d out of range %d (%w)", i, s.rows, seqerr.ErrOutOfRange)
	}
	if j < 0 || j >= s.cols {
		return 0, fmt.Errorf("wavelet: column %d out of range %d (%w)", j, s.cols, seqerr.ErrOutOfRange)
	}
	var x float64
	for _, c := range coefIndicesFor(j, s.p) {
		if v := s.coefAt(i, c); v != 0 {
			x += v * basisValue(c, j, s.p)
		}
	}
	return x, nil
}

// Row reconstructs row i by inverse-transforming its sparse coefficients.
func (s *Store) Row(i int, dst []float64) ([]float64, error) {
	if i < 0 || i >= s.rows {
		return nil, fmt.Errorf("wavelet: row %d out of range %d (%w)", i, s.rows, seqerr.ErrOutOfRange)
	}
	coef := make([]float64, s.p)
	for k, c := range s.idx[i] {
		coef[c] = s.val[i][k]
	}
	full := Inverse(coef, s.cols)
	if cap(dst) < s.cols {
		dst = make([]float64, s.cols)
	}
	dst = dst[:s.cols]
	copy(dst, full)
	return dst, nil
}

// StoredNumbers charges 2 numbers per kept coefficient (value + index),
// matching the paper's accounting style for auxiliary integers.
func (s *Store) StoredNumbers() int64 {
	var total int64
	for i := range s.idx {
		total += int64(len(s.idx[i])) * 2
	}
	return total
}

// EncodePayload serializes dims, padded length, t, and per-row pairs.
func (s *Store) EncodePayload(w *store.Writer) error {
	w.U64(uint64(s.rows))
	w.U64(uint64(s.cols))
	w.U64(uint64(s.p))
	w.U64(uint64(s.t))
	for i := 0; i < s.rows; i++ {
		w.U32(uint32(len(s.idx[i])))
		for k := range s.idx[i] {
			w.U32(s.idx[i][k])
			w.F64(s.val[i][k])
		}
	}
	return w.Err()
}

func decode(r *store.Reader) (store.Store, error) {
	rows := int(r.U64())
	cols := int(r.U64())
	p := int(r.U64())
	t := int(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rows < 0 || cols <= 0 || p < cols || p != pow2Ceil(p) || t < 0 || t > p ||
		!store.DimsSane(rows, cols, p, t) {
		return nil, fmt.Errorf("%w: wavelet header inconsistent", store.ErrCorrupt)
	}
	s := &Store{rows: rows, cols: cols, p: p, t: t,
		idx: make([][]uint32, rows), val: make([][]float64, rows)}
	for i := 0; i < rows; i++ {
		cnt := int(r.U32())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if cnt < 0 || cnt > p {
			return nil, fmt.Errorf("%w: wavelet row %d has %d coefficients", store.ErrCorrupt, i, cnt)
		}
		s.idx[i] = make([]uint32, cnt)
		s.val[i] = make([]float64, cnt)
		prev := -1
		for k := 0; k < cnt; k++ {
			s.idx[i][k] = r.U32()
			s.val[i][k] = r.F64()
			if int(s.idx[i][k]) <= prev || int(s.idx[i][k]) >= p {
				return nil, fmt.Errorf("%w: wavelet row %d index order", store.ErrCorrupt, i)
			}
			prev = int(s.idx[i][k])
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func init() {
	store.RegisterCodec(store.MethodWavelet, decode)
}

var _ store.Encoder = (*Store)(nil)
