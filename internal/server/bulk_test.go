package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"seqstore/internal/core"
	"seqstore/internal/dataset"
	"seqstore/internal/ingest"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
	"seqstore/internal/store"
)

// newWritableServer builds a server over an ingestion tier: a small SVDD
// cold segment plus a WAL in a test directory. Column labels c0..cN-1 are
// attached so label-addressed reads can reach appended rows.
func newWritableServer(t *testing.T, opts Options, iopts ingest.Options) (*httptest.Server, *Handler, *ingest.Tiered, *linalg.Matrix) {
	t.Helper()
	cfg := dataset.DefaultPhoneConfig(40)
	cfg.M = 48
	x := dataset.GeneratePhone(cfg)
	cold, err := core.Compress(matio.NewMem(x), core.Options{Budget: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]string, cfg.M)
	for j := range cols {
		cols[j] = fmt.Sprintf("c%d", j)
	}
	labels := &store.Labels{Rows: make([]string, cfg.N), Cols: cols}
	ti, err := ingest.Open(cold, labels, filepath.Join(t.TempDir(), "hot.wal"), iopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ti.Close() })
	h := NewHandler(ti, labels, opts)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h, ti, x
}

// bulkLine renders one NDJSON document.
func bulkLine(t *testing.T, label string, values []float64) string {
	t.Helper()
	buf, err := json.Marshal(map[string]interface{}{"label": label, "values": values})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf) + "\n"
}

// rampRow builds a distinctive test row of the given width.
func rampRow(width int, seed float64) []float64 {
	row := make([]float64, width)
	for j := range row {
		row[j] = seed*1000 + float64(j)
	}
	return row
}

func postBulk(t *testing.T, srvURL, body string, wantStatus int) (map[string]interface{}, http.Header) {
	t.Helper()
	resp, err := http.Post(srvURL+"/v1/bulk", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/bulk: status %d, want %d", resp.StatusCode, wantStatus)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode bulk response: %v", err)
	}
	return out, resp.Header
}

func TestBulkEndpoint(t *testing.T) {
	srv, _, ti, _ := newWritableServer(t, Options{}, ingest.Options{DisableBackground: true})

	// Two documents, one with an ES-style action line, one bare.
	body := "{\"create\":{}}\n" +
		bulkLine(t, "w-0", rampRow(48, 1)) +
		"\n" + // blank lines are tolerated
		bulkLine(t, "w-1", rampRow(48, 2))
	out, hdr := postBulk(t, srv.URL, body, http.StatusOK)
	if out["errors"].(bool) {
		t.Fatalf("errors = true: %v", out)
	}
	items := out["items"].([]interface{})
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2", len(items))
	}
	first := items[0].(map[string]interface{})["create"].(map[string]interface{})
	if first["status"].(float64) != http.StatusCreated || first["row"].(float64) != 40 {
		t.Errorf("first item = %v, want status 201 row 40", first)
	}
	// The whole batch is one WAL fsync: exactly one disk access on the
	// write request's cost header.
	if got := hdr.Get("X-Cost-Disk-Accesses"); got != "1" {
		t.Errorf("bulk X-Cost-Disk-Accesses = %q, want 1", got)
	}
	if ti.HotRows() != 2 {
		t.Errorf("hot rows = %d, want 2", ti.HotRows())
	}

	// The appended rows serve immediately — exactly, and label-addressed.
	cell := getJSON(t, srv.URL+"/v1/cell?i=41&j=3", http.StatusOK)
	if v := cell["value"].(float64); v != 2003 {
		t.Errorf("hot cell = %v, want 2003", v)
	}
	byLabel := getJSON(t, srv.URL+"/v1/cell?row=w-1&col=c3", http.StatusOK)
	if v := byLabel["value"].(float64); v != 2003 {
		t.Errorf("label-addressed hot cell = %v, want 2003", v)
	}

	// Info and metrics reflect the tier.
	info := getJSON(t, srv.URL+"/v1/info", http.StatusOK)
	if info["writable"] != true || info["hotRows"].(float64) != 2 || info["rows"].(float64) != 42 {
		t.Errorf("info = %v", info)
	}
	metrics := getJSON(t, srv.URL+"/v1/metrics", http.StatusOK)
	ing, ok := metrics["ingest"].(map[string]interface{})
	if !ok {
		t.Fatalf("metrics has no ingest section: %v", metrics)
	}
	if ing["rows_appended"].(float64) != 2 || ing["wal_syncs"].(float64) < 1 {
		t.Errorf("ingest metrics = %v", ing)
	}
}

func TestBulkPerItemErrors(t *testing.T) {
	srv, _, ti, _ := newWritableServer(t, Options{}, ingest.Options{DisableBackground: true})

	short := rampRow(5, 1) // wrong width
	body := bulkLine(t, "bad-short", short) +
		bulkLine(t, "good", rampRow(48, 3)) +
		bulkLine(t, "bad-wide", rampRow(49, 4))
	out, _ := postBulk(t, srv.URL, body, http.StatusOK)
	if !out["errors"].(bool) {
		t.Fatalf("errors = false: %v", out)
	}
	items := out["items"].([]interface{})
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3", len(items))
	}
	statuses := make([]float64, 3)
	for k, it := range items {
		statuses[k] = it.(map[string]interface{})["create"].(map[string]interface{})["status"].(float64)
	}
	if statuses[0] != 400 || statuses[1] != 201 || statuses[2] != 400 {
		t.Errorf("item statuses = %v, want [400 201 400]", statuses)
	}
	// Only the good document landed.
	if ti.HotRows() != 1 {
		t.Errorf("hot rows = %d, want 1", ti.HotRows())
	}

	// Whole-request failures: malformed JSON, a NaN literal (not JSON — no
	// document boundary can be trusted past it), junk object, empty body.
	for _, bad := range []string{"{not json\n", "{\"label\":\"x\",\"values\":[NaN]}\n", "{\"frob\":1}\n", ""} {
		resp, err := http.Post(srv.URL+"/v1/bulk", "application/x-ndjson", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bulk body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// GET on the write endpoint is 405 with the right Allow verb.
	resp, err := http.Get(srv.URL + "/v1/bulk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /v1/bulk: status %d Allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

func TestBulkOnReadOnlyStoreIs403(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	out, _ := postBulk(t, srv.URL, bulkLine(t, "x", rampRow(366, 1)), http.StatusForbidden)
	if !strings.Contains(errMessage(t, out), "read-only") {
		t.Errorf("error = %v", out["error"])
	}
}

// TestBulkColdCellCostsOneAccess is the acceptance criterion for the cost
// model across the row lifecycle: a hot row serves with zero disk accesses;
// after compaction folds it into the cold segment, the same (uncached) cell
// reports exactly one.
func TestBulkColdCellCostsOneAccess(t *testing.T) {
	srv, _, ti, _ := newWritableServer(t, Options{}, ingest.Options{DisableBackground: true})

	postBulk(t, srv.URL, bulkLine(t, "w-0", rampRow(48, 7)), http.StatusOK)

	costOf := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		return resp.Header.Get("X-Cost-Disk-Accesses")
	}

	hotURL := srv.URL + "/v1/cell?i=40&j=3"
	if got := costOf(hotURL); got != "0" {
		t.Errorf("hot cell X-Cost-Disk-Accesses = %q, want 0", got)
	}
	if n, err := ti.Compact(); err != nil || n != 1 {
		t.Fatalf("Compact = %d, %v", n, err)
	}
	if ti.IsHot(40) {
		t.Fatal("row 40 still hot after compaction")
	}
	if got := costOf(hotURL); got != "1" {
		t.Errorf("cold cell X-Cost-Disk-Accesses = %q, want 1", got)
	}
}

// TestBulkCacheInvalidation drives the coherence machinery end to end: a
// cached hot row must not serve its stale exact values after compaction
// replaced them with a folded reconstruction.
func TestBulkCacheInvalidation(t *testing.T) {
	srv, h, ti, _ := newWritableServer(t, Options{CacheRows: 32}, ingest.Options{DisableBackground: true})

	postBulk(t, srv.URL, bulkLine(t, "w-0", rampRow(48, 5)), http.StatusOK)
	before := getJSON(t, srv.URL+"/v1/row?i=40", http.StatusOK)
	if v := before["values"].([]interface{})[0].(float64); v != 5000 {
		t.Fatalf("hot row cell = %v, want exact 5000", v)
	}
	if _, err := ti.Compact(); err != nil {
		t.Fatal(err)
	}
	// The cached entry for row 40 must be gone; the re-read must match the
	// store's own post-fold reconstruction bit for bit.
	after := getJSON(t, srv.URL+"/v1/row?i=40", http.StatusOK)
	want, err := ti.Row(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range after["values"].([]interface{}) {
		if v.(float64) != want[j] {
			t.Fatalf("col %d: served %v, store reconstructs %v (stale cache?)", j, v, want[j])
		}
	}
	metrics := getJSON(t, srv.URL+"/v1/metrics", http.StatusOK)
	cache := metrics["cache"].(map[string]interface{})
	if cache["invalidations"].(float64) < 1 {
		t.Errorf("cache invalidations = %v, want ≥ 1", cache["invalidations"])
	}
	_ = h
}

// TestBulkReadWriteHammer interleaves HTTP bulk writes with /v1/rows reads
// and /v1/agg aggregations while the background compactor folds rows, at
// several concurrency levels. Run with -race this is the acceptance drill
// for the tier's locking protocol at the serving layer.
func TestBulkReadWriteHammer(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, _, _, _ := newWritableServer(t, Options{CacheRows: 64}, ingest.Options{
				CompactAfter: 8,
				PersistPath:  filepath.Join(t.TempDir(), "cold.sqz"),
			})

			iters := 12
			if testing.Short() {
				iters = 4
			}
			var wg sync.WaitGroup
			errc := make(chan error, 2*workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) { // writer
					defer wg.Done()
					for n := 0; n < iters; n++ {
						body := bulkLine(t, "", rampRow(48, float64(w*1000+n))) +
							bulkLine(t, "", rampRow(48, float64(w*1000+n)+0.5))
						resp, err := http.Post(srv.URL+"/v1/bulk", "application/x-ndjson", strings.NewReader(body))
						if err != nil {
							errc <- err
							return
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("writer %d: bulk status %d", w, resp.StatusCode)
							return
						}
					}
				}(w)
				wg.Add(1)
				go func(w int) { // reader
					defer wg.Done()
					for n := 0; n < iters; n++ {
						for _, path := range []string{"/v1/rows?i=0:8", "/v1/agg?f=sum&rows=0:16&cols=0:10", "/v1/cell?i=39&j=7"} {
							resp, err := http.Get(srv.URL + path)
							if err != nil {
								errc <- err
								return
							}
							resp.Body.Close()
							if resp.StatusCode != http.StatusOK {
								errc <- fmt.Errorf("reader %d: %s status %d", w, path, resp.StatusCode)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}

			// Post-storm invariant: every acknowledged row is readable and
			// the unified dims add up.
			info := getJSON(t, srv.URL+"/v1/info", http.StatusOK)
			wantRows := 40 + workers*iters*2
			if got := int(info["rows"].(float64)); got != wantRows {
				t.Errorf("rows = %d, want %d", got, wantRows)
			}
			getJSON(t, fmt.Sprintf("%s/v1/row?i=%d", srv.URL, wantRows-1), http.StatusOK)
		})
	}
}
