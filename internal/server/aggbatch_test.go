package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"seqstore/internal/ingest"
	"seqstore/internal/query"
)

func postAggBatch(t *testing.T, srvURL, body string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Post(srvURL+"/v1/aggregate/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/aggregate/batch: status %d, want %d", resp.StatusCode, wantStatus)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	return out
}

// TestAggBatchEndpoint: a batch of aggregates returns, per item, exactly
// what the single /v1/agg endpoint returns for the same (f, rows, cols).
func TestAggBatchEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	queries := []struct{ f, rows, cols string }{
		{"sum", "0:60", "0:24"},
		{"min", "0:60", "0:24"},
		{"avg", "30:90", ""},
		{"stddev", "0:120", "5,7,9"},
		{"count", "0:10", "0:10"},
		{"max", "10:70", "0:12"},
	}
	var items []string
	for _, q := range queries {
		items = append(items, fmt.Sprintf(`{"f":%q,"rows":%q,"cols":%q}`, q.f, q.rows, q.cols))
	}
	out := postAggBatch(t, srv.URL, `{"queries":[`+strings.Join(items, ",")+`]}`, http.StatusOK)
	if out["errors"].(bool) {
		t.Fatalf("batch reported errors: %v", out)
	}
	results := out["items"].([]interface{})
	if len(results) != len(queries) {
		t.Fatalf("%d items for %d queries", len(results), len(queries))
	}
	for qi, q := range queries {
		item := results[qi].(map[string]interface{})
		if item["status"].(float64) != http.StatusOK {
			t.Fatalf("query %d: status %v: %v", qi, item["status"], item["error"])
		}
		single := getJSON(t, srv.URL+fmt.Sprintf("/v1/agg?f=%s&rows=%s&cols=%s", q.f, q.rows, q.cols), http.StatusOK)
		if item["value"] != single["value"] {
			t.Errorf("query %d (%s): batch %v != single %v", qi, q.f, item["value"], single["value"])
		}
	}
}

// TestAggBatchPerItemErrors: one bad query 400s alone; the rest evaluate.
func TestAggBatchPerItemErrors(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := `{"queries":[
		{"f":"sum","rows":"0:10","cols":"0:10"},
		{"f":"median","rows":"0:10","cols":"0:10"},
		{"f":"min","rows":"0:999999","cols":"0:10"},
		{"f":"max","rows":"0:10","cols":"0:10"}
	]}`
	out := postAggBatch(t, srv.URL, body, http.StatusOK)
	if !out["errors"].(bool) {
		t.Fatal("batch with bad items reported errors=false")
	}
	results := out["items"].([]interface{})
	status := func(i int) float64 { return results[i].(map[string]interface{})["status"].(float64) }
	if status(0) != http.StatusOK || status(3) != http.StatusOK {
		t.Errorf("valid items failed: %v", results)
	}
	if status(1) != http.StatusBadRequest {
		t.Errorf("unknown aggregate: status %v, want 400", status(1))
	}
	if status(2) != http.StatusBadRequest {
		t.Errorf("out-of-range rows: status %v, want 400", status(2))
	}
}

// TestAggBatchRequestValidation: malformed body, empty query list and
// oversized batches fail the whole request.
func TestAggBatchRequestValidation(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{MaxBatchQueries: 2})
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed", `{"queries":[`},
		{"empty", `{"queries":[]}`},
		{"no-queries", `{}`},
		{"over-limit", `{"queries":[{"f":"sum"},{"f":"min"},{"f":"max"}]}`},
	} {
		postAggBatch(t, srv.URL, tc.body, http.StatusBadRequest)
	}
	// GET is rejected with Allow: POST.
	resp, err := http.Get(srv.URL + "/v1/aggregate/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestPlanCacheMetrics: repeated aggregates hit the plan cache, and the
// hits/misses surface on /v1/metrics both as the plan_cache section and
// as plan_cache_* gauges.
func TestPlanCacheMetrics(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	for i := 0; i < 3; i++ {
		getJSON(t, srv.URL+"/v1/agg?f=min&rows=0:60&cols=0:24", http.StatusOK)
	}
	metrics := getJSON(t, srv.URL+"/v1/metrics", http.StatusOK)
	pc := metrics["plan_cache"].(map[string]interface{})
	if pc["enabled"] != true {
		t.Fatalf("plan cache not enabled by default: %v", pc)
	}
	if pc["misses"].(float64) < 1 || pc["hits"].(float64) < 2 {
		t.Errorf("plan cache hits=%v misses=%v after 3 identical queries", pc["hits"], pc["misses"])
	}
	gauges := metrics["gauges"].(map[string]interface{})
	if gauges["plan_cache_hits_total"].(float64) != pc["hits"].(float64) {
		t.Errorf("gauge %v != section %v", gauges["plan_cache_hits_total"], pc["hits"])
	}
}

// TestPlanCacheDisabled: PlanCacheSize < 0 turns the cache off; queries
// still answer and the metrics section says disabled.
func TestPlanCacheDisabled(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{PlanCacheSize: -1})
	getJSON(t, srv.URL+"/v1/agg?f=min&rows=0:60&cols=0:24", http.StatusOK)
	metrics := getJSON(t, srv.URL+"/v1/metrics", http.StatusOK)
	pc := metrics["plan_cache"].(map[string]interface{})
	if pc["enabled"] != false {
		t.Fatalf("plan cache enabled despite PlanCacheSize=-1: %v", pc)
	}
}

// TestPlanCacheInvalidationUnderIngestion is the coherence drill from the
// issue: interleave /v1/bulk writes, compactions and cached aggregate
// reads at several concurrency levels (run under -race by make race).
// After the dust settles, the plan-cache epoch must have advanced (every
// fold purged the plans), and every served aggregate must be bit-identical
// to a cold, cache-free evaluation over the post-fold store — a stale
// pre-fold panel would show up as a wrong sum over the folded rows.
func TestPlanCacheInvalidationUnderIngestion(t *testing.T) {
	aggQueries := []string{
		"/v1/agg?f=sum&rows=0:36&cols=0:24",
		"/v1/agg?f=stddev&rows=0:40&cols=0:48",
		"/v1/agg?f=min&rows=8:36&cols=4:20",
	}
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("writers=%d", workers), func(t *testing.T) {
			srv, h, ti, _ := newWritableServer(t,
				Options{CacheRows: 32, QueryWorkers: 2},
				ingest.Options{CompactAfter: 4, PersistPath: filepath.Join(t.TempDir(), "cold.sqz")})

			epoch0 := h.plans.Epoch()
			iters := 10
			if testing.Short() {
				iters = 3
			}
			var wg sync.WaitGroup
			errc := make(chan error, 2*workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) { // writer: appends trigger background folds
					defer wg.Done()
					for n := 0; n < iters; n++ {
						body := bulkLine(t, "", rampRow(48, float64(w*100+n)))
						resp, err := http.Post(srv.URL+"/v1/bulk", "application/x-ndjson", strings.NewReader(body))
						if err != nil {
							errc <- err
							return
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("writer %d: bulk status %d", w, resp.StatusCode)
							return
						}
					}
				}(w)
				wg.Add(1)
				go func(w int) { // reader: warms and re-warms the plan cache
					defer wg.Done()
					for n := 0; n < iters; n++ {
						for _, path := range aggQueries {
							resp, err := http.Get(srv.URL + path)
							if err != nil {
								errc <- err
								return
							}
							resp.Body.Close()
							if resp.StatusCode != http.StatusOK {
								errc <- fmt.Errorf("reader %d: %s status %d", w, path, resp.StatusCode)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// Quiesce: fold everything still hot, then observe the epoch.
			if _, err := ti.Compact(); err != nil {
				t.Fatal(err)
			}
			if h.plans.Epoch() == epoch0 {
				t.Fatal("plan-cache epoch never advanced across folds")
			}

			// Every served aggregate must equal the cold, cache-free
			// evaluation of the post-fold store, bit for bit. The handler
			// evaluates at QueryWorkers=2, so the reference does too
			// (summation order is deterministic per worker count).
			for _, path := range aggQueries {
				served := getJSON(t, srv.URL+path, http.StatusOK)
				q := strings.SplitN(path, "?", 2)[1]
				params := map[string]string{}
				for _, kv := range strings.Split(q, "&") {
					k, v, _ := strings.Cut(kv, "=")
					params[k] = v
				}
				agg, err := query.ParseAggregate(params["f"])
				if err != nil {
					t.Fatal(err)
				}
				n, m := ti.Dims()
				rows, err := query.ParseIndexSpec(params["rows"], n)
				if err != nil {
					t.Fatal(err)
				}
				cols, err := query.ParseIndexSpec(params["cols"], m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := query.EvaluateOpts(ti, agg, query.Selection{Rows: rows, Cols: cols},
					query.Options{Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if served["value"].(float64) != want {
					t.Errorf("%s: served %v != cold post-fold evaluation %v (stale plan?)",
						path, served["value"], want)
				}
			}
		})
	}
}

// TestAggBatchOnWritableStore: the batch endpoint works over an ingestion
// tier (the generic engine path) and stays coherent across a fold.
func TestAggBatchOnWritableStore(t *testing.T) {
	srv, _, ti, _ := newWritableServer(t, Options{QueryWorkers: 1}, ingest.Options{DisableBackground: true})
	body := `{"queries":[{"f":"sum","rows":"0:40","cols":"0:48"},{"f":"min","rows":"0:40","cols":"0:48"}]}`
	postBulk(t, srv.URL, bulkLine(t, "", rampRow(48, 9)), http.StatusOK)
	out := postAggBatch(t, srv.URL, body, http.StatusOK)
	if out["errors"].(bool) {
		t.Fatalf("batch errors on writable store: %v", out)
	}
	if _, err := ti.Compact(); err != nil {
		t.Fatal(err)
	}
	out = postAggBatch(t, srv.URL, body, http.StatusOK)
	for qi, item := range out["items"].([]interface{}) {
		got := item.(map[string]interface{})
		q := []query.Aggregate{query.Sum, query.Min}[qi]
		n, m := ti.Dims()
		want, err := query.EvaluateOpts(ti, q, query.Selection{Rows: seqInts(0, 40), Cols: seqInts(0, m)},
			query.Options{Workers: 1})
		_ = n
		if err != nil {
			t.Fatal(err)
		}
		if got["value"].(float64) != want {
			t.Errorf("post-fold batch item %d: %v != %v", qi, got["value"], want)
		}
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
