package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"seqstore/internal/telemetry"
)

// updateGolden regenerates the /metrics schema golden files:
//
//	go test ./internal/server/ -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// get issues a GET and returns the response with its body read.
func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestCostHeaderColdWarm pins the paper's one-access claim live over HTTP:
// a cold cell request costs exactly one disk access (one U-row fetch), and
// the warm repeat — served from the row cache — costs zero.
func TestCostHeaderColdWarm(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{CacheRows: 64})
	url := srv.URL + "/v1/cell?i=7&j=100"

	resp, _ := get(t, url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cost-Disk-Accesses"); got != "1" {
		t.Errorf("cold cell: X-Cost-Disk-Accesses = %q, want 1", got)
	}

	resp, _ = get(t, url, nil)
	if got := resp.Header.Get("X-Cost-Disk-Accesses"); got != "0" {
		t.Errorf("warm cell: X-Cost-Disk-Accesses = %q, want 0", got)
	}

	// The trace ring tells the same story: newest-first, the warm request
	// shows a cache hit and no disk access, the cold one the opposite.
	_, body := get(t, srv.URL+"/v1/debug/traces", nil)
	var traces struct {
		Traces []struct {
			Name string `json:"name"`
			Cost struct {
				DiskAccesses int64 `json:"disk_accesses"`
				CacheHits    int64 `json:"cache_hits"`
				CacheMisses  int64 `json:"cache_misses"`
				RowsRead     int64 `json:"rows_read"`
			} `json:"cost"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) < 2 {
		t.Fatalf("ring holds %d traces, want >= 2", len(traces.Traces))
	}
	warm, cold := traces.Traces[0], traces.Traces[1]
	if warm.Name != "/v1/cell" || cold.Name != "/v1/cell" {
		t.Fatalf("trace names = %q, %q", warm.Name, cold.Name)
	}
	if warm.Cost.DiskAccesses != 0 || warm.Cost.CacheHits != 1 {
		t.Errorf("warm trace cost = %+v, want 0 disk accesses, 1 cache hit", warm.Cost)
	}
	if cold.Cost.DiskAccesses != 1 || cold.Cost.CacheMisses != 1 || cold.Cost.RowsRead != 1 {
		t.Errorf("cold trace cost = %+v, want exactly 1 disk access, 1 miss, 1 row", cold.Cost)
	}
}

// TestRequestIDPropagation: a well-formed client ID is echoed on the
// response and lands on the trace of a worker-sharded aggregate; a
// malformed one is replaced with a fresh 16-hex ID.
func TestRequestIDPropagation(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{QueryWorkers: 4})

	const id = "obs-test.request-42"
	resp, _ := get(t, srv.URL+"/v1/agg?f=sum", map[string]string{"X-Request-Id": id})
	if got := resp.Header.Get("X-Request-Id"); got != id {
		t.Errorf("X-Request-Id = %q, want echo of %q", got, id)
	}

	resp, _ = get(t, srv.URL+"/v1/healthz", map[string]string{"X-Request-Id": "bad id! not/hex"})
	fresh := resp.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(fresh) {
		t.Errorf("malformed client ID not replaced: got %q", fresh)
	}

	_, body := get(t, srv.URL+"/v1/debug/traces", nil)
	var traces struct {
		Traces []struct {
			RequestID string `json:"request_id"`
			Name      string `json:"name"`
			Cost      struct {
				WorkerChunks int64 `json:"worker_chunks"`
			} `json:"cost"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range traces.Traces {
		if tr.RequestID != id {
			continue
		}
		found = true
		if tr.Name != "/v1/agg" {
			t.Errorf("trace name = %q", tr.Name)
		}
		// The ledger was fed from inside the query workers: the client's
		// request ID reached them through the context.
		if tr.Cost.WorkerChunks < 1 {
			t.Errorf("agg trace has no worker chunks: ledger not propagated")
		}
		hasEval := false
		for _, sp := range tr.Spans {
			if sp.Name == "evaluate" {
				hasEval = true
			}
		}
		if !hasEval {
			t.Errorf("agg trace missing evaluate span: %+v", tr.Spans)
		}
	}
	if !found {
		t.Fatalf("trace for request %q not in ring", id)
	}
}

// TestTracesRedaction: query strings (which can carry customer labels)
// never appear on /v1/debug/traces — traces are named by endpoint pattern
// only — and the traces endpoint stays out of its own ring.
func TestTracesRedaction(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	const marker = "SECRET-CUSTOMER-XYZ"
	get(t, srv.URL+"/v1/cell?i=5&j=100&customer="+marker, nil)
	get(t, srv.URL+"/v1/debug/traces", nil)
	_, body := get(t, srv.URL+"/v1/debug/traces", nil)
	s := string(body)
	if strings.Contains(s, marker) {
		t.Error("trace output leaked a query-string value")
	}
	if strings.Contains(s, "?") {
		t.Error("trace output contains a raw query string")
	}
	if strings.Contains(s, `"name":"`+tracesPattern+`"`) {
		t.Error("traces endpoint recorded itself in the ring")
	}
}

// TestMetricsPromLive scrapes the live ?format=prom exposition and runs it
// through the strict parser: well-formed families, monotone cumulative
// histograms, and the per-shard cache counters present after traffic.
func TestMetricsPromLive(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{CacheRows: 64})
	get(t, srv.URL+"/v1/cell?i=3&j=9", nil)
	get(t, srv.URL+"/v1/cell?i=3&j=9", nil)

	resp, body := get(t, srv.URL+"/v1/metrics?format=prom", nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	pm, err := telemetry.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("live exposition does not parse: %v", err)
	}
	if v := pm.Get("seqstore_go_goroutines"); len(v) != 1 || v[0] < 1 {
		t.Errorf("seqstore_go_goroutines = %v", v)
	}
	if v := pm.Get("seqstore_uptime_seconds"); len(v) != 1 {
		t.Errorf("seqstore_uptime_seconds = %v", v)
	}
	var hits, misses float64
	for _, s := range pm.Samples {
		if strings.HasPrefix(s.Name, "seqstore_cache_shard_") {
			switch {
			case strings.HasSuffix(s.Name, "_hits_total"):
				hits += s.Value
			case strings.HasSuffix(s.Name, "_misses_total"):
				misses += s.Value
			}
		}
	}
	if hits < 1 || misses < 1 {
		t.Errorf("per-shard cache counters not live: hits=%v misses=%v", hits, misses)
	}
	if pm.Types["seqstore_request_duration_seconds"] != "histogram" {
		t.Errorf("request duration family type = %q", pm.Types["seqstore_request_duration_seconds"])
	}
}

// --- Golden schema pinning (the `make metrics-golden` stage) ---------------

// jsonSchema flattens a decoded JSON body into sorted key paths with type
// suffixes. Map keys beginning with "/" (endpoint patterns) collapse to
// "*" and arrays descend into their first element, so the schema is stable
// across traffic and store sizes while still catching shape regressions.
func jsonSchema(v interface{}, prefix string, out map[string]string) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, child := range t {
			if strings.HasPrefix(k, "/") {
				k = "*"
			}
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			jsonSchema(child, p, out)
		}
	case []interface{}:
		if len(t) > 0 {
			jsonSchema(t[0], prefix+"[]", out)
		} else {
			out[prefix+"[]"] = "empty"
		}
	case string:
		out[prefix] = "string"
	case float64:
		out[prefix] = "number"
	case bool:
		out[prefix] = "bool"
	case nil:
		out[prefix] = "null"
	default:
		out[prefix] = fmt.Sprintf("%T", t)
	}
}

func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	sort.Strings(got)
	text := strings.Join(got, "\n") + "\n"
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if text != string(want) {
		t.Errorf("%s schema drifted from golden; diff the output or rerun with -update-golden\ngot:\n%s\nwant:\n%s",
			name, text, want)
	}
}

// TestMetricsJSONSchemaGolden pins the key structure of the /v1/metrics
// JSON body against testdata/metrics_json_schema.golden.
func TestMetricsJSONSchemaGolden(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{CacheRows: 64})
	get(t, srv.URL+"/v1/cell?i=1&j=1", nil) // make latency fields non-degenerate
	body := getJSON(t, srv.URL+"/v1/metrics", http.StatusOK)
	schema := make(map[string]string)
	jsonSchema(map[string]interface{}(body), "", schema)
	lines := make([]string, 0, len(schema))
	for k, typ := range schema {
		lines = append(lines, k+" "+typ)
	}
	checkGolden(t, "metrics_json_schema.golden", lines)
}

// TestMetricsPromSchemaGolden pins the family names and types of the
// Prometheus exposition against testdata/metrics_prom_schema.golden.
func TestMetricsPromSchemaGolden(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{CacheRows: 64})
	get(t, srv.URL+"/v1/cell?i=1&j=1", nil)
	_, body := get(t, srv.URL+"/v1/metrics?format=prom", nil)
	pm, err := telemetry.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(pm.Types))
	for name, typ := range pm.Types {
		lines = append(lines, name+" "+typ)
	}
	checkGolden(t, "metrics_prom_schema.golden", lines)
}
