package server

import (
	"sync"
	"testing"
)

func TestRowCacheGetPut(t *testing.T) {
	c := newRowCache(64)
	if _, ok := c.get(3); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(3, []float64{1, 2, 3}, c.epochNow())
	row, ok := c.get(3)
	if !ok || len(row) != 3 || row[1] != 2 {
		t.Fatalf("get(3) = %v, %v", row, ok)
	}
	// Refreshing an existing key replaces its value without growing.
	c.put(3, []float64{9}, c.epochNow())
	row, _ = c.get(3)
	if len(row) != 1 || row[0] != 9 {
		t.Fatalf("refreshed row = %v", row)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d after refresh", c.len())
	}
}

func TestRowCacheCapacityRounding(t *testing.T) {
	// Capacity rounds up to a multiple of the shard count, minimum one row
	// per shard.
	if got := newRowCache(1).capacity(); got != cacheShards {
		t.Errorf("capacity(1) = %d, want %d", got, cacheShards)
	}
	if got := newRowCache(100).capacity(); got != 112 { // ceil(100/16)*16
		t.Errorf("capacity(100) = %d, want 112", got)
	}
	if got := newRowCache(64).capacity(); got != 64 {
		t.Errorf("capacity(64) = %d, want 64", got)
	}
}

func TestRowCacheLRUEviction(t *testing.T) {
	// One row per shard: keys 0 and 16 collide on shard 0.
	c := newRowCache(cacheShards)
	c.put(0, []float64{0}, c.epochNow())
	c.put(16, []float64{16}, c.epochNow())
	if _, ok := c.get(0); ok {
		t.Error("LRU entry 0 should have been evicted by 16")
	}
	if row, ok := c.get(16); !ok || row[0] != 16 {
		t.Error("entry 16 missing after eviction of 0")
	}

	// Two per shard: touching the older entry saves it from eviction.
	c2 := newRowCache(2 * cacheShards)
	c2.put(0, []float64{0}, c2.epochNow())
	c2.put(16, []float64{16}, c2.epochNow())
	c2.get(0) // 0 now most recently used; 16 is LRU
	c2.put(32, []float64{32}, c2.epochNow())
	if _, ok := c2.get(16); ok {
		t.Error("16 should have been evicted as LRU")
	}
	if _, ok := c2.get(0); !ok {
		t.Error("0 was touched and must survive")
	}
	if _, ok := c2.get(32); !ok {
		t.Error("32 was just inserted and must be present")
	}
}

func TestRowCacheSharding(t *testing.T) {
	c := newRowCache(cacheShards) // one row per shard
	// Keys 0..15 land on distinct shards: all must fit despite per-shard
	// capacity of one.
	for i := 0; i < cacheShards; i++ {
		c.put(i, []float64{float64(i)}, c.epochNow())
	}
	if c.len() != cacheShards {
		t.Fatalf("len = %d, want %d", c.len(), cacheShards)
	}
	for i := 0; i < cacheShards; i++ {
		if row, ok := c.get(i); !ok || row[0] != float64(i) {
			t.Errorf("key %d lost", i)
		}
	}
}

func TestRowCacheInvalidation(t *testing.T) {
	c := newRowCache(64)
	c.put(3, []float64{1}, c.epochNow())
	c.put(4, []float64{2}, c.epochNow())

	// invalidate drops exactly the named row.
	c.invalidate(3)
	if _, ok := c.get(3); ok {
		t.Error("row 3 survived invalidate")
	}
	if _, ok := c.get(4); !ok {
		t.Error("row 4 lost to a foreign invalidate")
	}

	// A fill whose epoch was captured before a mutation must be dropped:
	// this is the in-flight-fill race a bare invalidate cannot close.
	stale := c.epochNow()
	c.bumpEpoch()
	c.put(5, []float64{9}, stale)
	if _, ok := c.get(5); ok {
		t.Error("stale fill was cached across an epoch bump")
	}
	c.put(5, []float64{9}, c.epochNow())
	if _, ok := c.get(5); !ok {
		t.Error("fresh fill rejected")
	}

	// purge empties everything.
	c.purge()
	if c.len() != 0 {
		t.Errorf("len = %d after purge", c.len())
	}
}

func TestRowCacheConcurrent(t *testing.T) {
	c := newRowCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				i := (g*31 + n) % 256
				if row, ok := c.get(i); ok && row[0] != float64(i) {
					t.Errorf("key %d holds value %v", i, row[0])
					return
				}
				c.put(i, []float64{float64(i)}, c.epochNow())
			}
		}(g)
	}
	wg.Wait()
	if c.len() > c.capacity() {
		t.Errorf("len %d exceeds capacity %d", c.len(), c.capacity())
	}
}
