package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"seqstore/internal/api"
	"seqstore/internal/trace"
)

// postAgg posts an aggregate request body and decodes the typed response.
func postAgg(t *testing.T, url, body string) (*http.Response, api.AggregateResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/aggregate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status %d: %s", resp.StatusCode, raw)
	}
	var out api.AggregateResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode: %v (%s)", err, raw)
	}
	return resp, out
}

// TestExplainHTTP pins the explain acceptance over HTTP: the block reports
// the plan the dispatch actually chose for each aggregate kind, the
// plan-cache outcome flips from miss to hit on the repeat, and on a cold
// store the estimated row-run cost equals the executed ledger — which in
// turn equals the X-Cost-Disk-Accesses header on the wire.
func TestExplainHTTP(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{QueryWorkers: 2})

	// sum dispatches to the factored path. Cold store: estimates are exact.
	resp, out := postAgg(t, srv.URL, `{"f":"sum","explain":true}`)
	ex := out.Explain
	if ex == nil {
		t.Fatal("explain requested but absent")
	}
	if ex.Plan != "factored" {
		t.Fatalf("sum plan %q, want factored", ex.Plan)
	}
	if ex.PlanCache != "miss" {
		t.Fatalf("first query plan_cache %q, want miss", ex.PlanCache)
	}
	if ex.Workers != 2 {
		t.Fatalf("workers %d, want 2", ex.Workers)
	}
	if ex.EstDiskAccesses != ex.Cost.DiskAccesses || ex.EstRowsRead != ex.Cost.RowsRead ||
		ex.EstPagesTouched != ex.Cost.PagesTouched || ex.EstDeltasProbed != ex.Cost.DeltasProbed {
		t.Fatalf("cold estimates != executed ledger: est (disk %d rows %d pages %d deltas %d) vs %+v",
			ex.EstDiskAccesses, ex.EstRowsRead, ex.EstPagesTouched, ex.EstDeltasProbed, ex.Cost)
	}
	hdr, err := strconv.ParseInt(resp.Header.Get(trace.HeaderDiskAccesses), 10, 64)
	if err != nil || hdr != ex.Cost.DiskAccesses {
		t.Fatalf("header disk accesses %d (err %v) != explain ledger %d", hdr, err, ex.Cost.DiskAccesses)
	}

	// Same selection again: the plan comes from the cache.
	if _, out = postAgg(t, srv.URL, `{"f":"sum","explain":true}`); out.Explain.PlanCache != "hit" {
		t.Fatalf("repeat plan_cache %q, want hit", out.Explain.PlanCache)
	}

	// min dispatches to the projected path, count to the closed form.
	if _, out = postAgg(t, srv.URL, `{"f":"min","explain":true}`); out.Explain.Plan != "projected" {
		t.Fatalf("min plan %q, want projected", out.Explain.Plan)
	}
	_, out = postAgg(t, srv.URL, `{"f":"count","explain":true}`)
	if out.Explain.Plan != "count" || out.Explain.Cost.DiskAccesses != 0 {
		t.Fatalf("count explain: plan %q, %d disk accesses; want the zero-IO closed form",
			out.Explain.Plan, out.Explain.Cost.DiskAccesses)
	}

	// Without the flag the block stays off the wire.
	if _, out = postAgg(t, srv.URL, `{"f":"sum"}`); out.Explain != nil {
		t.Fatalf("unrequested explain present: %+v", out.Explain)
	}
}

// TestBatchExplainHTTP: the per-query explain flag annotates exactly the
// items that asked for it; the batch-level flag annotates all of them.
func TestBatchExplainHTTP(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})

	resp, err := http.Post(srv.URL+"/v1/aggregate/batch", "application/json",
		strings.NewReader(`{"queries":[{"f":"sum","explain":true},{"f":"min"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.BatchAggregateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 {
		t.Fatalf("items %d, want 2", len(out.Items))
	}
	if out.Items[0].Explain == nil || out.Items[0].Explain.Plan != "factored" {
		t.Fatalf("item 0 explain: %+v, want factored plan", out.Items[0].Explain)
	}
	if out.Items[1].Explain != nil {
		t.Fatalf("item 1 got an explain it never asked for: %+v", out.Items[1].Explain)
	}

	resp2, err := http.Post(srv.URL+"/v1/aggregate/batch", "application/json",
		strings.NewReader(`{"explain":true,"queries":[{"f":"sum"},{"f":"min"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for i, item := range out.Items {
		if item.Explain == nil {
			t.Fatalf("batch-level explain=true but item %d has no block", i)
		}
	}
}

// TestExplainSchemaGolden pins the explain response shape against
// testdata/explain_schema.golden so wire drift is a deliberate act.
func TestExplainSchemaGolden(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{QueryWorkers: 2})
	resp, err := http.Post(srv.URL+"/v1/aggregate", "application/json",
		strings.NewReader(`{"f":"sum","explain":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body["explain"]; !ok {
		t.Fatal("no explain block to pin")
	}
	schema := make(map[string]string)
	jsonSchema(body, "", schema)
	lines := make([]string, 0, len(schema))
	for k, typ := range schema {
		lines = append(lines, k+" "+typ)
	}
	checkGolden(t, "explain_schema.golden", lines)
}

// TestServerSLO: configuring an objective surfaces the report on
// /v1/healthz and the seqstore_slo_* families on the Prometheus view,
// derived from the same histograms as the latency metrics.
func TestServerSLO(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{SLOObjective: time.Second, SLOTarget: 0.95})
	get(t, srv.URL+"/v1/cell?i=1&j=1", nil)

	_, body := get(t, srv.URL+"/v1/healthz", nil)
	var hz api.HealthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.SLO == nil || hz.SLO.ObjectiveMs != 1000 || hz.SLO.Target != 0.95 {
		t.Fatalf("healthz slo block: %+v", hz.SLO)
	}
	var cell bool
	for _, ep := range hz.SLO.Endpoints {
		if ep.Endpoint == "/v1/cell" {
			cell = true
			if ep.Count < 1 || ep.Attainment <= 0 || ep.Attainment > 1 || ep.BurnRate < 0 {
				t.Fatalf("cell slo entry out of range: %+v", ep)
			}
		}
	}
	if !cell {
		t.Fatal("no /v1/cell entry in the SLO report")
	}

	_, prom := get(t, srv.URL+"/v1/metrics?format=prom", nil)
	for _, fam := range []string{"seqstore_slo_objective_seconds", "seqstore_slo_target_ratio",
		"seqstore_slo_attainment_ratio", "seqstore_slo_burn_rate"} {
		if !strings.Contains(string(prom), "# TYPE "+fam+" gauge") {
			t.Fatalf("prom exposition missing %s", fam)
		}
	}

	// And without an objective the families stay absent, so the existing
	// prom goldens keep describing the default exposition.
	srv2, _, _ := newTestServer(t, Options{})
	_, prom2 := get(t, srv2.URL+"/v1/metrics?format=prom", nil)
	if strings.Contains(string(prom2), "seqstore_slo_") {
		t.Fatal("slo families emitted without an objective configured")
	}
}
