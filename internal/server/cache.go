package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"seqstore/internal/telemetry"
)

// cacheShards is the number of independently locked LRU shards. Sixteen
// shards keep lock contention negligible at typical serving concurrency
// while the per-shard maps stay dense.
const cacheShards = 16

// rowCache is a sharded LRU cache of reconstructed rows, fronting
// Store.Row/Store.Cell in the serving hot path. Each row is reconstructed
// once per residency (one U access + O(k·M) arithmetic) and then served
// from memory, which is exactly where arbitrary-range workloads — many
// cells and sub-ranges of the same recently-touched sequences — win.
//
// Rows are sharded by index modulo cacheShards, so sequential scans spread
// across shards. Cached slices are shared read-only between goroutines;
// callers must never modify a returned row.
//
// With a writable (tiered) store behind the handler, rows can change after
// they were cached: a compaction replaces a hot row's exact values with its
// folded reconstruction, and a recompression changes every cold row. Two
// mechanisms keep the cache coherent. invalidate/purge remove entries that
// are already resident; the epoch closes the remaining race, where a fill
// in flight during the mutation would re-insert stale values after the
// invalidation ran: put drops any fill whose pre-reconstruction epoch no
// longer matches.
type rowCache struct {
	perShard int
	epoch    atomic.Uint64
	shards   [cacheShards]cacheShard

	// invalidations counts rows dropped by invalidate/purge/stale-fill
	// (distinct from capacity evictions). Wired by instrument; nil before.
	invalidations *telemetry.Counter
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[int]*list.Element

	// Per-shard traffic counters. Wired to the telemetry registry by
	// instrument; nil (uncounted) until then, so the cache is usable
	// standalone in tests.
	hits, misses, evictions *telemetry.Counter
}

type cacheEntry struct {
	i   int
	row []float64
}

// newRowCache builds a cache holding approximately capacity rows
// (rounded up to a multiple of the shard count).
func newRowCache(capacity int) *rowCache {
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &rowCache{perShard: per}
	for s := range c.shards {
		c.shards[s].ll = list.New()
		c.shards[s].items = make(map[int]*list.Element)
	}
	return c
}

func (c *rowCache) shard(i int) *cacheShard {
	return &c.shards[uint(i)%cacheShards]
}

// instrument registers per-shard hit/miss/eviction counters
// (cache_shard_NN_hits, …) in the registry, so shard balance — and any
// hot-shard skew — is visible on /metrics alongside the aggregate counters.
func (c *rowCache) instrument(tel *telemetry.Registry) {
	c.invalidations = tel.Counter("cache_invalidations")
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		sh.hits = tel.Counter(fmt.Sprintf("cache_shard_%02d_hits", s))
		sh.misses = tel.Counter(fmt.Sprintf("cache_shard_%02d_misses", s))
		sh.evictions = tel.Counter(fmt.Sprintf("cache_shard_%02d_evictions", s))
		sh.mu.Unlock()
	}
}

// count increments a shard counter when instrumented.
func count(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// get returns the cached row and marks it most recently used.
func (c *rowCache) get(i int) ([]float64, bool) {
	s := c.shard(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[i]
	if !ok {
		count(s.misses)
		return nil, false
	}
	count(s.hits)
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).row, true
}

// epochNow returns the current mutation epoch; callers capture it before
// reconstructing a row and hand it back to put.
func (c *rowCache) epochNow() uint64 { return c.epoch.Load() }

// put inserts (or refreshes) row i, evicting the shard's least recently
// used entry when over capacity. The cache takes ownership of row.
// fillEpoch is the epoch the caller captured before reconstructing; a fill
// that straddled a store mutation is silently dropped — caching it would
// resurrect pre-mutation values that invalidate already removed.
func (c *rowCache) put(i int, row []float64, fillEpoch uint64) {
	if fillEpoch != c.epoch.Load() {
		count(c.invalidations)
		return
	}
	s := c.shard(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[i]; ok {
		el.Value.(*cacheEntry).row = row
		s.ll.MoveToFront(el)
		return
	}
	s.items[i] = s.ll.PushFront(&cacheEntry{i: i, row: row})
	if s.ll.Len() > c.perShard {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*cacheEntry).i)
		count(s.evictions)
	}
}

// invalidate drops row i (a fold-in changed its reconstruction). The epoch
// must already have been advanced (bumpEpoch) so concurrent fills of the
// pre-mutation value cannot re-insert it.
func (c *rowCache) invalidate(i int) {
	s := c.shard(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[i]; ok {
		s.ll.Remove(el)
		delete(s.items, i)
		count(c.invalidations)
	}
}

// purge empties the cache (a recompression changed every row).
func (c *rowCache) purge() {
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.Lock()
		for i := 0; i < sh.ll.Len(); i++ {
			count(c.invalidations)
		}
		sh.ll.Init()
		sh.items = make(map[int]*list.Element)
		sh.mu.Unlock()
	}
}

// bumpEpoch invalidates all in-flight fills; call before invalidate/purge.
func (c *rowCache) bumpEpoch() { c.epoch.Add(1) }

// len returns the number of cached rows across all shards.
func (c *rowCache) len() int {
	var n int
	for s := range c.shards {
		c.shards[s].mu.Lock()
		n += c.shards[s].ll.Len()
		c.shards[s].mu.Unlock()
	}
	return n
}

// capacity returns the total row capacity after shard rounding.
func (c *rowCache) capacity() int { return c.perShard * cacheShards }
