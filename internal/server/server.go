package server

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"seqstore/internal/seqerr"
	"seqstore/internal/store"
)

// Config configures the production http.Server around a Handler. The zero
// value is usable: every field defaults to the values documented on it.
type Config struct {
	// Addr is the listen address; default ":8080".
	Addr string
	// CacheRows sizes the LRU row cache; 0 disables it.
	CacheRows int
	// MaxBatchCells / MaxBatchRows / MaxBatchQueries bound the batch
	// endpoints; 0 selects the package defaults.
	MaxBatchCells   int
	MaxBatchRows    int
	MaxBatchQueries int
	// PlanCacheSize sizes the query-plan cache; 0 selects
	// DefaultPlanCacheSize, negative disables it.
	PlanCacheSize int
	// QueryWorkers shards /agg evaluation across this many goroutines:
	// 0 means one per CPU, 1 evaluates serially.
	QueryWorkers int
	// Logger receives the structured request log; nil silences it.
	Logger *slog.Logger
	// SlowQuery is the latency threshold above which requests log at Warn
	// with their cost ledger; 0 disables the slow-query log.
	SlowQuery time.Duration
	// TraceBuffer sizes the /v1/debug/traces ring; 0 selects the default.
	TraceBuffer int
	// SLOObjective is the per-endpoint latency objective surfaced through
	// /v1/metrics and /v1/healthz; 0 disables SLO reporting. SLOTarget is
	// the fraction of requests that must meet it; 0 selects 0.99.
	SLOObjective time.Duration
	SLOTarget    float64

	// ReadHeaderTimeout bounds reading request headers; default 5s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the whole request; default 10s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response — generous by default (60s)
	// because a whole-dataset naive aggregate on a large store is legal.
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive idle connections; default 120s.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size; default 1 MiB.
	MaxHeaderBytes int
	// ShutdownTimeout bounds graceful drain of in-flight requests after
	// the serve context is cancelled; default 10s.
	ShutdownTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 1 << 20
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	return c
}

// Server wraps a Handler in a fully configured http.Server with graceful
// shutdown. Create it with New; serve with Run (or Serve + Shutdown for
// finer control).
type Server struct {
	cfg     Config
	handler *Handler
	http    *http.Server
}

// New builds a Server over an open store and optional labels.
func New(st store.Store, labels *store.Labels, cfg Config) *Server {
	cfg = cfg.withDefaults()
	h := NewHandler(st, labels, Options{
		CacheRows:       cfg.CacheRows,
		MaxBatchCells:   cfg.MaxBatchCells,
		MaxBatchRows:    cfg.MaxBatchRows,
		MaxBatchQueries: cfg.MaxBatchQueries,
		PlanCacheSize:   cfg.PlanCacheSize,
		QueryWorkers:    cfg.QueryWorkers,
		Logger:          cfg.Logger,
		SlowQuery:       cfg.SlowQuery,
		TraceBuffer:     cfg.TraceBuffer,
		SLOObjective:    cfg.SLOObjective,
		SLOTarget:       cfg.SLOTarget,
	})
	return &Server{
		cfg:     cfg,
		handler: h,
		http: &http.Server{
			Addr:              cfg.Addr,
			Handler:           h,
			ReadHeaderTimeout: cfg.ReadHeaderTimeout,
			ReadTimeout:       cfg.ReadTimeout,
			WriteTimeout:      cfg.WriteTimeout,
			IdleTimeout:       cfg.IdleTimeout,
			MaxHeaderBytes:    cfg.MaxHeaderBytes,
		},
	}
}

// Handler returns the underlying query handler (for tests and harnesses).
func (s *Server) Handler() *Handler { return s.handler }

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Listen opens the configured TCP listener.
func (s *Server) Listen() (net.Listener, error) {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	return l, nil
}

// Serve accepts connections on l until Shutdown (or a fatal accept
// error). A graceful shutdown returns nil, not http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to drain, up to the context deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// Run serves on l until ctx is cancelled (typically by SIGINT/SIGTERM via
// signal.NotifyContext), then drains in-flight requests for up to
// Config.ShutdownTimeout before returning. A clean drain returns nil; a
// drain that exceeds the timeout returns the shutdown error with any
// still-open connections force-closed.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	if err := s.http.Shutdown(sctx); err != nil {
		s.http.Close()
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return <-errc
}

// Open loads a compressed .sqz store and its labels for serving — the
// internal-interface mirror of the facade's seqstore.Open. Failures name
// the file; container damage carries the frame and byte offset (see
// seqerr.CorruptError).
func Open(path string) (store.Store, *store.Labels, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open: %w", err)
	}
	defer f.Close()
	st, labels, err := store.ReadLabeled(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, nil, seqerr.FillPath(fmt.Errorf("server: open %s: %w", path, err), path)
	}
	return st, labels, nil
}
