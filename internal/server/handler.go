// Package server is the production HTTP serving layer over a compressed
// store: the decision-support front end of the paper's warehouse setting,
// hardened for real traffic. It hosts the JSON query API (single and batch
// cell/row endpoints, aggregates over index-spec selections, axis-label
// addressing), a sharded LRU row cache in front of reconstruction, and a
// /metrics endpoint exposing per-endpoint latency histograms together with
// the matio disk-access counters — so the paper's one-access-per-cell
// claim is verifiable live under load.
//
// The package works on the internal store interfaces (store.Store +
// store.Labels) rather than the public facade, so the experiments harness
// can drive it without an import cycle through the root package.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seqstore/internal/api"
	"seqstore/internal/core"
	"seqstore/internal/ingest"
	"seqstore/internal/query"
	"seqstore/internal/seqerr"
	"seqstore/internal/store"
	"seqstore/internal/svd"
	"seqstore/internal/telemetry"
	"seqstore/internal/trace"
)

// Default batch-endpoint bounds; see Options.
const (
	DefaultMaxBatchCells = 10000
	DefaultMaxBatchRows  = 1024
	// DefaultMaxBatchQueries bounds one /v1/aggregate/batch request. Each
	// query is a full aggregate evaluation, so the default is conservative.
	DefaultMaxBatchQueries = 64
	// DefaultPlanCacheSize is the query-plan cache capacity when
	// Options.PlanCacheSize is 0. A plan is a selection's V panel, run
	// schedule and column index — small relative to a row cache entry — so
	// the default comfortably covers a dashboard's working set.
	DefaultPlanCacheSize = 256
)

// Options configures a Handler.
type Options struct {
	// CacheRows is the capacity, in rows, of the LRU reconstruction cache
	// fronting /cell, /row and the batch endpoints. 0 disables the cache
	// (every request reconstructs from the compressed form).
	CacheRows int
	// MaxBatchCells bounds one /cells request; 0 means
	// DefaultMaxBatchCells.
	MaxBatchCells int
	// MaxBatchRows bounds one /rows request; 0 means DefaultMaxBatchRows.
	MaxBatchRows int
	// MaxBatchQueries bounds one /v1/aggregate/batch request; 0 means
	// DefaultMaxBatchQueries.
	MaxBatchQueries int
	// PlanCacheSize is the capacity, in memoized query plans, of the plan
	// cache fronting /v1/agg and /v1/aggregate/batch. 0 selects
	// DefaultPlanCacheSize; negative disables plan caching (every aggregate
	// re-derives its panel and run schedule).
	PlanCacheSize int
	// QueryWorkers shards /agg evaluation across this many goroutines:
	// 0 means one per CPU, 1 evaluates serially.
	QueryWorkers int
	// Logger receives the structured request log. nil silences request
	// logging (traces and metrics still work).
	Logger *slog.Logger
	// SlowQuery is the latency threshold above which a request is logged at
	// Warn with its full cost ledger; 0 disables the slow-query log.
	SlowQuery time.Duration
	// TraceBuffer is the capacity of the /v1/debug/traces ring; 0 selects
	// trace.DefaultRingSize.
	TraceBuffer int
	// SLOObjective is the per-endpoint latency objective surfaced through
	// /v1/metrics (JSON and Prometheus) and /v1/healthz; 0 disables SLO
	// reporting. SLOTarget is the fraction of requests that must meet the
	// objective; 0 selects 0.99.
	SLOObjective time.Duration
	SLOTarget    float64
}

// Handler is the HTTP query API over one open store. It is safe for
// concurrent use. Create it with NewHandler.
type Handler struct {
	st     store.Store
	labels *store.Labels
	opts   Options

	// writable is non-nil when st is an ingestion tier; it enables
	// /v1/bulk and switches the cost model and gauge plumbing to unwrap
	// the tier's current cold segment dynamically.
	writable *ingest.Tiered

	rowIndex, colIndex map[string]int // label → index; nil when unlabeled

	cache        *rowCache        // nil when disabled
	plans        *query.PlanCache // nil when disabled
	hits, misses *telemetry.Counter
	corruptions  *telemetry.Counter // store reads that surfaced ErrCorrupt

	tel  *telemetry.Registry
	mux  *http.ServeMux
	log  *slog.Logger
	ring *trace.Ring
}

// NewHandler builds the HTTP API around an open store and optional axis
// labels.
func NewHandler(st store.Store, labels *store.Labels, opts Options) *Handler {
	if opts.MaxBatchCells <= 0 {
		opts.MaxBatchCells = DefaultMaxBatchCells
	}
	if opts.MaxBatchRows <= 0 {
		opts.MaxBatchRows = DefaultMaxBatchRows
	}
	if opts.MaxBatchQueries <= 0 {
		opts.MaxBatchQueries = DefaultMaxBatchQueries
	}
	if opts.PlanCacheSize == 0 {
		opts.PlanCacheSize = DefaultPlanCacheSize
	}
	h := &Handler{
		st:     st,
		labels: labels,
		opts:   opts,
		tel:    telemetry.NewRegistry(),
		mux:    http.NewServeMux(),
		log:    opts.Logger,
		ring:   trace.NewRing(opts.TraceBuffer),
	}
	if h.log == nil {
		h.log = slog.New(slog.DiscardHandler)
	}
	if opts.SLOObjective > 0 {
		target := opts.SLOTarget
		if target <= 0 {
			target = 0.99
		}
		h.tel.SetSLO(float64(opts.SLOObjective)/float64(time.Millisecond), target)
	}
	if labels != nil {
		h.rowIndex = indexLabels(labels.Rows)
		h.colIndex = indexLabels(labels.Cols)
	}
	h.writable, _ = st.(*ingest.Tiered)
	h.hits = h.tel.Counter("cache_hits")
	h.misses = h.tel.Counter("cache_misses")
	h.corruptions = h.tel.Counter("store_corruptions")
	if opts.CacheRows > 0 {
		h.cache = newRowCache(opts.CacheRows)
		h.cache.instrument(h.tel)
	}
	h.plans = query.NewPlanCache(opts.PlanCacheSize) // nil when size < 0
	if h.writable != nil && (h.cache != nil || h.plans != nil) {
		// Keep the caches coherent with the write path: a compaction
		// changes the folded rows' reconstructions (exact hot values become
		// approximations), a recompression changes every cold row and every
		// plan's V panel. The epoch bumps precede the removals so a
		// reconstruction or plan build in flight across the mutation cannot
		// re-insert pre-mutation state. The plan cache takes a full purge on
		// both hooks — conservative for fold-in (run schedules are
		// selection-pure), required for recompression.
		cache, plans := h.cache, h.plans
		h.writable.SetInvalidationHooks(
			func(rows []int) {
				if cache != nil {
					cache.bumpEpoch()
					for _, i := range rows {
						cache.invalidate(i)
					}
				}
				plans.Invalidate()
			},
			func() {
				if cache != nil {
					cache.bumpEpoch()
					cache.purge()
				}
				plans.Invalidate()
			},
		)
	}
	h.registerGauges()
	h.route("info", h.handleInfo)
	h.route("cell", h.handleCell)
	h.route("cells", h.handleCells)
	h.route("row", h.handleRow)
	h.route("rows", h.handleRows)
	// The GET query-param aggregate form is kept for existing clients but
	// deprecated in favor of POST /v1/aggregate (same JSON item schema as
	// the batch endpoint), following the /agg → /v1/agg precedent.
	h.handle("/v1/agg", deprecatedBy("/v1/aggregate", h.handleAgg))
	h.handle("/agg", deprecatedBy("/v1/aggregate", h.handleAgg))
	h.route("metrics", h.handleMetrics)
	h.route("healthz", h.handleHealthz)
	h.handle(tracesPattern, h.handleTraces)
	// The write endpoint has no legacy alias; it is registered even on a
	// read-only store so clients get a clear 403 instead of a 404.
	h.handleMethod("/v1/bulk", http.MethodPost, h.handleBulk)
	h.handleMethod("/v1/aggregate", http.MethodPost, h.handleAggregate)
	h.handleMethod("/v1/aggregate/batch", http.MethodPost, h.handleAggBatch)
	return h
}

// deprecatedBy wraps an endpoint that still works but has a preferred
// successor, advertising it with the standard Deprecation and Link headers.
func deprecatedBy(successor string, fn http.HandlerFunc) http.HandlerFunc {
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", link)
		fn(w, r)
	}
}

// tracesPattern is the trace-ring endpoint; it is excluded from its own
// ring so inspecting traces doesn't churn them.
const tracesPattern = "/v1/debug/traces"

// registerGauges wires the store, IO, cache and SVDD counters into the
// registry as collection-time gauges, so the Prometheus rendering covers the
// same ground as the hand-built /metrics JSON body. Monotonic sources get a
// _total suffix (typed counter in the exposition).
func (h *Handler) registerGauges() {
	h.tel.RegisterGauge("store_stored_numbers", func() float64 {
		return float64(h.st.StoredNumbers())
	})
	h.tel.RegisterGauge("store_space_ratio", func() float64 {
		return store.SpaceRatio(h.st)
	})
	if h.cache != nil {
		h.tel.RegisterGauge("cache_occupancy_rows", func() float64 {
			return float64(h.cache.len())
		})
		h.tel.RegisterGauge("cache_capacity_rows", func() float64 {
			return float64(h.cache.capacity())
		})
	}
	if h.plans != nil {
		h.tel.RegisterGauge("plan_cache_hits_total", func() float64 {
			return float64(h.plans.Stats().Hits)
		})
		h.tel.RegisterGauge("plan_cache_misses_total", func() float64 {
			return float64(h.plans.Stats().Misses)
		})
		h.tel.RegisterGauge("plan_cache_evictions_total", func() float64 {
			return float64(h.plans.Stats().Evictions)
		})
		h.tel.RegisterGauge("plan_cache_size", func() float64 {
			return float64(h.plans.Stats().Size)
		})
	}
	// The IO and SVDD gauges re-resolve the cold store on every collection:
	// with a writable tier behind the handler, recompression swaps the cold
	// segment, and a gauge bound to the pointer at startup would freeze.
	if query.UStats(h.coldStore()) != nil {
		h.tel.RegisterGauge("io_row_reads_total", func() float64 {
			if us := query.UStats(h.coldStore()); us != nil {
				return float64(us.RowReads())
			}
			return 0
		})
		h.tel.RegisterGauge("io_row_writes_total", func() float64 {
			if us := query.UStats(h.coldStore()); us != nil {
				return float64(us.RowWrites())
			}
			return 0
		})
		h.tel.RegisterGauge("io_passes_total", func() float64 {
			if us := query.UStats(h.coldStore()); us != nil {
				return float64(us.Passes())
			}
			return 0
		})
	}
	if _, ok := h.coldStore().(*core.Store); ok {
		svddStore := func() *core.Store {
			c, _ := h.coldStore().(*core.Store)
			return c
		}
		h.tel.RegisterGauge("svdd_delta_probes_total", func() float64 {
			if c := svddStore(); c != nil {
				probes, _ := c.ProbeStats()
				return float64(probes)
			}
			return 0
		})
		h.tel.RegisterGauge("svdd_bloom_saves_total", func() float64 {
			if c := svddStore(); c != nil {
				_, saves := c.ProbeStats()
				return float64(saves)
			}
			return 0
		})
		h.tel.RegisterGauge("svdd_delta_row_probes_total", func() float64 {
			if c := svddStore(); c != nil {
				return float64(c.RowProbes())
			}
			return 0
		})
		h.tel.RegisterGauge("svdd_zero_hits_total", func() float64 {
			if c := svddStore(); c != nil {
				return float64(c.ZeroHits())
			}
			return 0
		})
	}
	if h.writable != nil {
		h.tel.RegisterGauge("ingest_hot_rows", func() float64 {
			return float64(h.writable.HotRows())
		})
		h.tel.RegisterGauge("ingest_rows_appended_total", func() float64 {
			return float64(h.writable.Stats().Appended)
		})
		h.tel.RegisterGauge("ingest_rows_folded_total", func() float64 {
			return float64(h.writable.Stats().Folded)
		})
		h.tel.RegisterGauge("ingest_wal_bytes", func() float64 {
			return float64(h.writable.Stats().WalBytes)
		})
	}
}

// route registers one endpoint under the versioned API prefix ("/v1/cell")
// and at its pre-versioning path ("/cell"). The legacy alias serves the
// same handler but marks itself deprecated with the standard Deprecation
// header and a Link to the successor, so existing clients keep working
// while new ones are steered to /v1/.
func (h *Handler) route(name string, fn http.HandlerFunc) {
	h.handle("/v1/"+name, fn)
	h.handle("/"+name, deprecatedBy("/v1/"+name, fn))
}

// ServeHTTP dispatches to the instrumented endpoint handlers.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Telemetry exposes the handler's metrics registry (shared with /metrics).
func (h *Handler) Telemetry() *telemetry.Registry { return h.tel }

// CacheStats reports row-cache hit/miss counters and current size.
func (h *Handler) CacheStats() (hits, misses int64, size, capacity int) {
	if h.cache == nil {
		return h.hits.Load(), h.misses.Load(), 0, 0
	}
	return h.hits.Load(), h.misses.Load(), h.cache.len(), h.cache.capacity()
}

// PlanStats reports the query-plan cache's counters; the zero value when
// the plan cache is disabled.
func (h *Handler) PlanStats() query.PlanCacheStats {
	return h.plans.Stats()
}

// handle registers an instrumented GET-only endpoint; see handleMethod.
func (h *Handler) handle(pattern string, fn http.HandlerFunc) {
	h.handleMethod(pattern, http.MethodGet, fn)
}

// handleMethod registers an instrumented single-verb endpoint: every
// request is counted, timed and traced. The middleware assigns (or echoes)
// a request ID, threads a trace with its cost ledger through the request
// context into the store and query layers, writes the X-Request-Id and
// X-Cost-Disk-Accesses response headers, retires the finished trace into the
// /v1/debug/traces ring, and emits the structured request log (Debug
// normally, Warn above the slow-query threshold, Error on 5xx). Other verbs
// get 405 with an Allow header; responses with status ≥ 400 count as
// errors.
func (h *Handler) handleMethod(pattern, method string, fn http.HandlerFunc) {
	ep := h.tel.Endpoint(pattern)
	h.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep.Requests.Inc()

		id := trace.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = trace.NewRequestID()
		}
		// The trace is named by the endpoint pattern, never the raw URL:
		// query strings can carry customer labels, and /v1/debug/traces
		// serves trace names verbatim. A valid inbound traceparent (the
		// proxy hop) is adopted so this node's spans join the caller's
		// distributed trace; anything malformed degrades to a fresh root.
		parent, hasParent := trace.ParseTraceparent(r.Header.Get(trace.HeaderTraceparent))
		tr := trace.New(id, pattern)
		if hasParent {
			tr = trace.NewChild(id, pattern, parent)
		}
		logger := h.log.With("request_id", id)
		ctx := trace.WithLogger(trace.NewContext(r.Context(), tr), logger)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		// Cost headers must precede the body. Handlers buffer their JSON and
		// commit in one WriteHeader (api.WriteJSON), so the ledger is final
		// by the time the first byte is committed. The full X-Cost-* set is
		// emitted so a proxy can fold this node's ledger into its own.
		sw.beforeHeader = func() {
			hdr := sw.Header()
			hdr.Set(trace.HeaderRequestID, id)
			trace.EncodeCostHeaders(hdr, tr.Ledger.Snapshot())
			// Traced callers (the proxy) also get a bounded summary of
			// this node's spans, so the front-door trace ring can show
			// shard-side timing under the one distributed trace id.
			if hasParent {
				if spans := trace.EncodeSpanHeader(tr.Spans()); spans != "" {
					hdr.Set(trace.HeaderSpans, spans)
				}
			}
		}

		if r.Method != method {
			sw.Header().Set("Allow", method)
			api.WriteErrorDetail(sw, http.StatusMethodNotAllowed, api.ErrorDetail{
				Code:      api.CodeMethodNotAllowed,
				Message:   fmt.Sprintf("method %s not allowed; use %s", r.Method, method),
				RequestID: id,
			})
		} else {
			fn(sw, r)
		}

		elapsed := time.Since(start)
		ep.Latency.Observe(elapsed)
		if sw.status >= http.StatusBadRequest {
			ep.Errors.Inc()
		}
		snap := tr.Finish(sw.status)
		if pattern != tracesPattern {
			h.ring.Put(snap)
		}
		h.logRequest(logger, pattern, snap, elapsed)
	})
}

// logRequest emits one structured line per request. Normal traffic logs at
// Debug (cheap to filter out); requests above the slow-query threshold log
// at Warn with the full cost ledger, and 5xx responses at Error.
func (h *Handler) logRequest(logger *slog.Logger, pattern string, snap *trace.TraceSnapshot, elapsed time.Duration) {
	slow := h.opts.SlowQuery > 0 && elapsed >= h.opts.SlowQuery
	level := slog.LevelDebug
	msg := "request"
	switch {
	case snap.Status >= http.StatusInternalServerError:
		level = slog.LevelError
		msg = "request failed"
	case slow:
		level = slog.LevelWarn
		msg = "slow query"
	}
	if !logger.Enabled(context.Background(), level) {
		return
	}
	args := []any{
		"endpoint", pattern,
		"status", snap.Status,
		"duration_ms", float64(elapsed.Microseconds()) / 1e3,
		"trace_id", snap.TraceID,
	}
	if slow || level >= slog.LevelWarn {
		c := snap.Cost
		args = append(args,
			"disk_accesses", c.DiskAccesses,
			"rows_read", c.RowsRead,
			"pages_touched", c.PagesTouched,
			"cache_hits", c.CacheHits,
			"cache_misses", c.CacheMisses,
			"deltas_probed", c.DeltasProbed,
			"worker_chunks", c.WorkerChunks,
		)
	}
	logger.Log(context.Background(), level, msg, args...)
}

// statusWriter records the status code written by a handler so the
// instrumentation can classify the response after the fact, and runs the
// beforeHeader hook exactly once, immediately before the status line is
// committed — the last moment response headers can still be set.
type statusWriter struct {
	http.ResponseWriter
	status       int
	beforeHeader func()
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		if w.beforeHeader != nil {
			w.beforeHeader()
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// --- Read paths (row cache) ------------------------------------------------

// coldStore returns the store whose backing format carries the cost model:
// the tier's current cold segment when the store is writable (it is swapped
// by recompression, so it must be unwrapped per call, never captured),
// otherwise the store itself.
func (h *Handler) coldStore() store.Store {
	if h.writable != nil {
		return h.writable.Cold()
	}
	return h.st
}

// uPageSpan reports the backing pages of U row i for the cost ledger; one
// page per row for stores without a paged U backing.
func (h *Handler) uPageSpan(i int) int {
	switch t := h.coldStore().(type) {
	case *svd.Store:
		return t.UPageSpan(i, i+1)
	case *core.Store:
		return t.Base().UPageSpan(i, i+1)
	}
	return 1
}

// chargeRowRead attributes one row reconstruction — one U-row fetch in the
// paper's block model — to the request's cost ledger. Hot-segment rows are
// served from memory (their durable copy in the WAL is never read on the
// query path), and rows the SVDD store serves from its in-memory zero flag
// (§6.2) are reconstructions without a disk access.
func (h *Handler) chargeRowRead(led *trace.Ledger, i int) {
	led.AddRowsRead(1)
	if h.writable != nil && h.writable.IsHot(i) {
		return
	}
	if c, ok := h.coldStore().(*core.Store); ok && c.IsZeroRow(i) {
		return
	}
	led.AddDiskAccesses(1)
	led.AddPagesTouched(int64(h.uPageSpan(i)))
}

// row returns a reconstruction of row i, serving from the LRU cache when
// enabled, and charges the request's ledger: a cache hit costs zero disk
// accesses; a miss costs exactly one. The returned slice is shared; callers
// must not modify it.
func (h *Handler) row(ctx context.Context, i int) ([]float64, error) {
	led := trace.LedgerFrom(ctx)
	if h.cache == nil {
		row, err := h.st.Row(i, nil)
		if err == nil {
			h.chargeRowRead(led, i)
		}
		return row, err
	}
	if row, ok := h.cache.get(i); ok {
		h.hits.Inc()
		led.CacheHit()
		return row, nil
	}
	h.misses.Inc()
	led.CacheMiss()
	e := h.cache.epochNow() // before the reconstruction, closing the fill/mutation race
	row, err := h.st.Row(i, nil)
	if err != nil {
		return nil, err
	}
	h.chargeRowRead(led, i)
	h.cache.put(i, row, e)
	return row, nil
}

// cell reconstructs cell (i, j). With the cache enabled a miss
// reconstructs and caches the whole row — one U access either way — so
// subsequent cells of the same sequence are free.
func (h *Handler) cell(ctx context.Context, i, j int) (float64, error) {
	if h.cache == nil {
		v, err := h.st.Cell(i, j)
		if err == nil {
			h.chargeRowRead(trace.LedgerFrom(ctx), i)
		}
		return v, err
	}
	_, m := h.st.Dims()
	if j < 0 || j >= m {
		return 0, fmt.Errorf("server: column %d out of range %d (%w)", j, m, seqerr.ErrOutOfRange)
	}
	row, err := h.row(ctx, i)
	if err != nil {
		return 0, err
	}
	return row[j], nil
}

// --- Endpoints -------------------------------------------------------------

func (h *Handler) handleInfo(w http.ResponseWriter, r *http.Request) {
	rows, cols := h.st.Dims()
	body := api.InfoResponse{
		Method:        h.st.Method().String(),
		Rows:          rows,
		Cols:          cols,
		SpaceRatio:    store.SpaceRatio(h.st),
		StoredNumbers: h.st.StoredNumbers(),
		RowLabels:     h.rowIndex != nil,
		ColLabels:     h.colIndex != nil,
		CacheRows:     h.opts.CacheRows,
		Writable:      h.writable != nil,
	}
	if h.writable != nil {
		body.HotRows = h.writable.HotRows()
		body.ColdRows = h.writable.ColdRows()
	}
	api.WriteJSON(w, http.StatusOK, body)
}

func (h *Handler) handleCell(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	// Label-addressed form: /cell?row=GHI+Inc.&col=We
	if rl, cl := q.Get("row"), q.Get("col"); rl != "" || cl != "" {
		i, j, err := h.resolveLabels(rl, cl)
		if err != nil {
			api.WriteInvalid(w, r, err.Error())
			return
		}
		v, err := h.cell(r.Context(), i, j)
		if err != nil {
			h.fail(w, r, err)
			return
		}
		api.WriteJSON(w, http.StatusOK, cellBody(i, j, rl, cl, v))
		return
	}
	i, err1 := strconv.Atoi(q.Get("i"))
	j, err2 := strconv.Atoi(q.Get("j"))
	if err1 != nil || err2 != nil {
		api.WriteInvalid(w, r,
			"cell needs integer i and j (or label row and col) parameters")
		return
	}
	v, err := h.cell(r.Context(), i, j)
	if err != nil {
		h.fail(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, cellBody(i, j, "", "", v))
}

// cellBody renders one cell lookup result in the shared wire form.
func cellBody(i, j int, rowLabel, colLabel string, v float64) api.CellResponse {
	val, marker := api.Float(v)
	return api.CellResponse{
		I: i, J: j, Row: rowLabel, Col: colLabel,
		Value: val, Nonfinite: marker,
	}
}

// handleCells answers a batch of cell lookups in one request:
// /cells?at=5:100,7:200 (repeated at= parameters also accepted), amortizing
// per-request HTTP overhead across many reconstructions.
func (h *Handler) handleCells(w http.ResponseWriter, r *http.Request) {
	specs := r.URL.Query()["at"]
	var coords [][2]int
	for _, spec := range specs {
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			is, js, ok := strings.Cut(part, ":")
			if !ok {
				api.WriteInvalid(w, r, fmt.Sprintf("bad cell %q: want i:j", part))
				return
			}
			i, err1 := strconv.Atoi(strings.TrimSpace(is))
			j, err2 := strconv.Atoi(strings.TrimSpace(js))
			if err1 != nil || err2 != nil {
				api.WriteInvalid(w, r, fmt.Sprintf("bad cell %q: want integer i:j", part))
				return
			}
			coords = append(coords, [2]int{i, j})
		}
	}
	if len(coords) == 0 {
		api.WriteInvalid(w, r, "cells needs at=i:j[,i:j...] parameters")
		return
	}
	if len(coords) > h.opts.MaxBatchCells {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d cells exceeds limit %d", len(coords), h.opts.MaxBatchCells))
		return
	}
	cells := make([]api.CellResponse, 0, len(coords))
	for _, c := range coords {
		v, err := h.cell(r.Context(), c[0], c[1])
		if err != nil {
			h.fail(w, r, fmt.Errorf("cell %d:%d: %w", c[0], c[1], err))
			return
		}
		cells = append(cells, cellBody(c[0], c[1], "", "", v))
	}
	api.WriteJSON(w, http.StatusOK, api.CellsResponse{Count: len(cells), Cells: cells})
}

func (h *Handler) handleRow(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.URL.Query().Get("i"))
	if err != nil {
		api.WriteInvalid(w, r, "row needs an integer i parameter")
		return
	}
	row, err := h.row(r.Context(), i)
	if err != nil {
		h.fail(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, rowBody(i, row))
}

// rowBody renders one reconstructed row in the shared wire form.
func rowBody(i int, row []float64) api.RowResponse {
	vals, nonfinite := api.RowValues(row)
	return api.RowResponse{I: i, Values: vals, Nonfinite: nonfinite}
}

// handleRows reconstructs a batch of rows: /rows?i=0:8,17 with the same
// index-spec syntax as /agg selections (the spec must be non-empty — an
// unbounded "all rows" response is refused).
func (h *Handler) handleRows(w http.ResponseWriter, r *http.Request) {
	n, _ := h.st.Dims()
	spec := r.URL.Query().Get("i")
	if strings.TrimSpace(spec) == "" {
		api.WriteInvalid(w, r, "rows needs an i index spec, e.g. i=0:8,17")
		return
	}
	idx, err := query.ParseIndexSpec(spec, n)
	if err != nil {
		api.WriteInvalid(w, r, err.Error())
		return
	}
	if len(idx) == 0 {
		api.WriteInvalid(w, r, "rows selection is empty")
		return
	}
	if len(idx) > h.opts.MaxBatchRows {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d rows exceeds limit %d", len(idx), h.opts.MaxBatchRows))
		return
	}
	rows := make([]api.RowResponse, 0, len(idx))
	for _, i := range idx {
		row, err := h.row(r.Context(), i)
		if err != nil {
			h.fail(w, r, fmt.Errorf("row %d: %w", i, err))
			return
		}
		rows = append(rows, rowBody(i, row))
	}
	api.WriteJSON(w, http.StatusOK, api.RowsResponse{Count: len(rows), Rows: rows})
}

// parsedAgg is one aggregate query after parsing: the aggregate, the
// resolved selection, and the canonical function name echoed in responses.
type parsedAgg struct {
	f   string
	agg query.Aggregate
	sel query.Selection
}

// parseAggQuery resolves an AggregateRequest's (f, rows, cols) against the
// store's dimensions. F defaults to "avg"; empty specs select full axes.
func (h *Handler) parseAggQuery(req api.AggregateRequest) (parsedAgg, error) {
	n, m := h.st.Dims()
	f := req.F
	if f == "" {
		f = "avg"
	}
	agg, err := query.ParseAggregate(f)
	if err != nil {
		return parsedAgg{}, err
	}
	rows, err := query.ParseIndexSpec(req.Rows, n)
	if err != nil {
		return parsedAgg{}, fmt.Errorf("rows: %w", err)
	}
	cols, err := query.ParseIndexSpec(req.Cols, m)
	if err != nil {
		return parsedAgg{}, fmt.Errorf("cols: %w", err)
	}
	return parsedAgg{f: f, agg: agg, sel: query.Selection{Rows: rows, Cols: cols}}, nil
}

// queryOptions is the evaluation configuration shared by every aggregate
// endpoint.
func (h *Handler) queryOptions(ctx context.Context) query.Options {
	return query.Options{Workers: h.opts.QueryWorkers, Ctx: ctx, Plans: h.plans}
}

// handleAgg is the deprecated GET query-param aggregate form; it shares
// the evaluation path of POST /v1/aggregate.
func (h *Handler) handleAgg(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	h.serveAggregate(w, r, api.AggregateRequest{
		F: q.Get("f"), Rows: q.Get("rows"), Cols: q.Get("cols"),
	})
}

// handleAggregate is the typed aggregate endpoint: POST /v1/aggregate with
// one AggregateRequest body — the same item schema /v1/aggregate/batch
// takes — replacing the query-param form. With "partial": true the
// response carries the mergeable partial state instead of a value (the
// scatter/gather form used between proxy and store nodes).
func (h *Handler) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req api.AggregateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAggBatchBody))
	if err := dec.Decode(&req); err != nil {
		api.WriteInvalid(w, r, fmt.Sprintf("aggregate: malformed JSON body: %v", err))
		return
	}
	h.serveAggregate(w, r, req)
}

func (h *Handler) serveAggregate(w http.ResponseWriter, r *http.Request, req api.AggregateRequest) {
	pa, err := h.parseAggQuery(req)
	if err != nil {
		api.WriteInvalid(w, r, err.Error())
		return
	}
	sp := trace.StartSpan(r.Context(), "evaluate")
	sp.SetAttr("f", pa.f)
	sp.SetAttr("rows", len(pa.sel.Rows))
	sp.SetAttr("cols", len(pa.sel.Cols))
	body := api.AggregateResponse{F: pa.f, Rows: len(pa.sel.Rows), Cols: len(pa.sel.Cols)}
	if req.Partial {
		p, err := query.EvaluatePartial(h.st, pa.agg, pa.sel, h.queryOptions(r.Context()))
		sp.End()
		if err != nil {
			h.fail(w, r, err)
			return
		}
		enc, err := encodePartial(p)
		if err != nil {
			h.fail(w, r, err)
			return
		}
		body.Partial = enc
	} else {
		v, err := query.EvaluateOpts(h.st, pa.agg, pa.sel, h.queryOptions(r.Context()))
		sp.End()
		if err != nil {
			h.fail(w, r, err)
			return
		}
		body.Value, body.Nonfinite = api.Float(v)
	}
	if req.Explain {
		body.Explain = h.explainBody(r.Context(), pa)
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// explainBody builds the explain block for an already-executed query: the
// transient plan derivation from query.ExplainQuery (in-memory only — no
// store reads, no plan-cache traffic) joined with the request's executed
// ledger, whose plan_hits/plan_misses reveal how the real evaluation fared
// in the plan cache.
func (h *Handler) explainBody(ctx context.Context, pa parsedAgg) *api.Explain {
	ex, err := query.ExplainQuery(h.st, pa.agg, pa.sel, h.queryOptions(ctx))
	if err != nil {
		// The selection validated when the evaluation ran; a failure here
		// means the store changed shape mid-request — drop the block rather
		// than fail a query that already produced its answer.
		return nil
	}
	cost := trace.LedgerFrom(ctx).Snapshot()
	e := &api.Explain{
		Plan:            ex.Plan,
		Workers:         ex.Workers,
		Cells:           ex.Cells,
		ChunkRows:       ex.ChunkRows,
		Chunks:          ex.Chunks,
		Runs:            ex.Runs,
		CoalescedScans:  ex.CoalescedScans,
		ScanRows:        ex.ScanRows,
		PointRows:       ex.PointRows,
		ZeroRows:        ex.ZeroRows,
		EstRowsRead:     ex.EstRowsRead,
		EstDiskAccesses: ex.EstDiskAccesses,
		EstPagesTouched: ex.EstPagesTouched,
		EstDeltasProbed: ex.EstDeltasProbed,
		Cost:            cost,
	}
	switch {
	case cost.PlanHits > 0:
		e.PlanCache = "hit"
	case cost.PlanMisses > 0:
		e.PlanCache = "miss"
	default:
		e.PlanCache = "uncached"
	}
	return e
}

// encodePartial renders a mergeable partial in its wire form: the
// versioned binary frame, base64-wrapped so it can ride inside JSON
// (partials carry exact accumulators and possibly-NaN extrema, which JSON
// numbers cannot).
func encodePartial(p *query.Partial) (string, error) {
	raw, err := p.MarshalBinary()
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// maxAggBatchBody bounds a /v1/aggregate/batch request body. Index specs
// are compact (ranges, strides); a megabyte of them is a malformed
// request, not a workload.
const maxAggBatchBody = 1 << 20

// handleAggBatch evaluates N aggregates in one request through the
// scan-sharing batch engine: the union of the selections' U rows is
// fetched once and shared across all queries, so overlapping dashboards
// pay for each disk row once instead of once per panel. The request body
// is {"queries":[{"f":"sum","rows":"0:64","cols":"0:24"},...]}; the
// response mirrors the /v1/bulk per-item idiom — one bad query costs
// itself a 400 item without sinking the batch:
// {"took":<ms>,"errors":<bool>,"items":[{"status":200,"f":"sum",...,"value":V},...]}.
func (h *Handler) handleAggBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req api.BatchAggregateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAggBatchBody))
	if err := dec.Decode(&req); err != nil {
		api.WriteInvalid(w, r,
			fmt.Sprintf("aggregate/batch: malformed JSON body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		api.WriteInvalid(w, r, `aggregate/batch needs a non-empty "queries" array`)
		return
	}
	if len(req.Queries) > h.opts.MaxBatchQueries {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d queries exceeds limit %d", len(req.Queries), h.opts.MaxBatchQueries))
		return
	}

	items := make([]query.BatchItem, len(req.Queries))
	parsed := make([]parsedAgg, len(req.Queries))
	parseErrs := make([]string, len(req.Queries))
	hadErr := false
	for qi, bq := range req.Queries {
		pa, err := h.parseAggQuery(bq)
		if err != nil {
			parseErrs[qi], hadErr = err.Error(), true
			continue
		}
		parsed[qi] = pa
		items[qi] = query.BatchItem{Agg: pa.agg, Sel: pa.sel}
	}

	sp := trace.StartSpan(r.Context(), "evaluate_batch")
	sp.SetAttr("queries", len(items))
	sp.SetAttr("partial", req.Partial)
	out := make([]api.BatchAggregateItem, len(req.Queries))
	render := func(qi int, rerr error, fill func(it *api.BatchAggregateItem) error) {
		if parseErrs[qi] != "" {
			out[qi] = api.BatchAggregateItem{Status: http.StatusBadRequest, Error: parseErrs[qi]}
			return
		}
		if rerr == nil {
			it := api.BatchAggregateItem{
				Status: http.StatusOK,
				F:      parsed[qi].f,
				Rows:   len(parsed[qi].sel.Rows),
				Cols:   len(parsed[qi].sel.Cols),
			}
			rerr = fill(&it)
			if rerr == nil {
				if req.Explain || req.Queries[qi].Explain {
					it.Explain = h.explainBody(r.Context(), parsed[qi])
				}
				out[qi] = it
				return
			}
		}
		hadErr = true
		status, _ := api.Classify(rerr)
		out[qi] = api.BatchAggregateItem{Status: h.accountStatus(status), Error: rerr.Error()}
	}
	if req.Partial {
		// The scatter/gather form: every query returns mergeable partial
		// state through the same scan-sharing pass the value form uses.
		results, err := query.EvaluateBatchPartial(h.st, items, h.queryOptions(r.Context()))
		sp.End()
		if err != nil {
			h.fail(w, r, err)
			return
		}
		for qi := range req.Queries {
			pr := results[qi]
			render(qi, pr.Err, func(it *api.BatchAggregateItem) error {
				enc, err := encodePartial(pr.Partial)
				it.Partial = enc
				return err
			})
		}
	} else {
		results, err := query.EvaluateBatch(h.st, items, h.queryOptions(r.Context()))
		sp.End()
		if err != nil {
			// Only a batch-level failure (context cancellation) lands here;
			// per-query errors come back in results.
			h.fail(w, r, err)
			return
		}
		for qi := range req.Queries {
			v := results[qi].Value
			render(qi, results[qi].Err, func(it *api.BatchAggregateItem) error {
				it.Value, it.Nonfinite = api.Float(v)
				return nil
			})
		}
	}
	api.WriteJSON(w, http.StatusOK, api.BatchAggregateResponse{
		Took:   time.Since(start).Milliseconds(),
		Errors: hadErr,
		Items:  out,
	})
}

// --- Write path ------------------------------------------------------------

// maxBulkLine bounds one NDJSON line of a /v1/bulk body; a longer line is a
// malformed request, not a server fault.
const maxBulkLine = 1 << 20

// handleBulk ingests rows through the NDJSON bulk idiom: optional action
// lines ({"create":{}} or {"index":{}}) interleaved with document lines
// like {"label":"cust-9911","values":[0.4,1.7,...]}. Documents that fail
// validation are rejected per item (status 400) without sinking the rest of
// the request; every accepted document is appended — and fsynced — as ONE
// WAL batch, so an item reporting 201 is durable across any crash. The
// response mirrors the bulk contract:
// {"took":<ms>,"errors":<bool>,"items":[{"create":{"status":201,"row":N}}]}.
//
// Malformed NDJSON (unparseable line, oversized line, more documents than
// the /v1/rows batch limit) fails the whole request with 400: unlike a
// value error in one document, the server cannot tell where the next
// document boundary is.
func (h *Handler) handleBulk(w http.ResponseWriter, r *http.Request) {
	if h.writable == nil {
		api.WriteErrorDetail(w, http.StatusForbidden, api.ErrorDetail{
			Code:      api.CodeNotWritable,
			Message:   "store is read-only: start the server on a writable (tiered) store to enable /v1/bulk",
			RequestID: trace.FromContext(r.Context()).ID(),
		})
		return
	}
	start := time.Now()
	_, cols := h.st.Dims()

	var (
		items   []api.BulkItem
		pending []api.BulkDoc // validated documents awaiting the batch append
		slot    []int         // items index for each pending document
		hadErr  bool
	)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxBulkLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			api.WriteInvalid(w, r,
				fmt.Sprintf("bulk line %d: malformed JSON: %v", lineNo, err))
			return
		}
		if _, isDoc := obj["values"]; !isDoc {
			_, create := obj["create"]
			_, index := obj["index"]
			if create || index {
				// Action line: accepted and ignored — appending is the only
				// operation, so the action carries no information.
				continue
			}
			api.WriteInvalid(w, r,
				fmt.Sprintf("bulk line %d: neither an action ({\"create\":{}}) nor a document with \"values\"", lineNo))
			return
		}
		var d api.BulkDoc
		if err := json.Unmarshal(line, &d); err != nil {
			api.WriteInvalid(w, r,
				fmt.Sprintf("bulk line %d: malformed document: %v", lineNo, err))
			return
		}
		// Per-document validation mirrors AppendBatch's checks, so one bad
		// document costs itself a 400 item instead of failing the batch.
		var reason string
		if len(d.Values) != cols {
			reason = fmt.Sprintf("row has %d values, store has %d columns", len(d.Values), cols)
		} else {
			for _, v := range d.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					reason = "row contains a non-finite value"
					break
				}
			}
		}
		if reason != "" {
			hadErr = true
			items = append(items, api.BulkItem{Create: api.BulkResult{
				Status: http.StatusBadRequest, Label: d.Label, Error: reason,
			}})
			continue
		}
		slot = append(slot, len(items))
		items = append(items, api.BulkItem{}) // filled in after the append
		pending = append(pending, d)
	}
	if err := sc.Err(); err != nil {
		api.WriteInvalid(w, r, fmt.Sprintf("bulk line %d: %v", lineNo+1, err))
		return
	}
	if len(items) == 0 {
		api.WriteInvalid(w, r,
			"bulk body has no documents; send NDJSON lines like {\"label\":\"x\",\"values\":[...]}")
		return
	}
	if len(pending) > h.opts.MaxBatchRows {
		api.WriteInvalid(w, r,
			fmt.Sprintf("batch of %d rows exceeds limit %d", len(pending), h.opts.MaxBatchRows))
		return
	}

	if len(pending) > 0 {
		labels := make([]string, len(pending))
		rows := make([][]float64, len(pending))
		for k, d := range pending {
			labels[k] = d.Label
			rows[k] = d.Values
		}
		first, err := h.writable.AppendBatch(r.Context(), labels, rows)
		if err != nil {
			h.fail(w, r, err)
			return
		}
		for k := range pending {
			items[slot[k]].Create = api.BulkResult{
				Status: http.StatusCreated, Row: first + k, Label: pending[k].Label,
			}
		}
	}
	api.WriteJSON(w, http.StatusOK, api.BulkResponse{
		Took:   time.Since(start).Milliseconds(),
		Errors: hadErr,
		Items:  items,
	})
}

// handleMetrics serves the metrics snapshot. The default body is the
// hand-built JSON; ?format=prom renders the same snapshot in Prometheus
// text exposition format 0.0.4 so a stock scraper can ingest it.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := h.tel.Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := telemetry.WritePrometheus(w, snap); err != nil {
			// Headers are committed; the scraper sees a truncated body and
			// fails the scrape, which is the correct failure mode.
			trace.LoggerFrom(r.Context()).Error("prometheus render failed", "err", err)
		}
		return
	}
	rows, cols := h.st.Dims()
	hits, misses := h.hits.Load(), h.misses.Load()
	cache := map[string]interface{}{
		"enabled": h.cache != nil,
		"hits":    hits,
		"misses":  misses,
	}
	if h.cache != nil {
		cache["capacity"] = h.cache.capacity()
		cache["size"] = h.cache.len()
		cache["hit_rate"] = telemetry.Rate(hits, misses)
		cache["invalidations"] = h.cache.invalidations.Load()
	}
	planCache := map[string]interface{}{"enabled": h.plans != nil}
	if h.plans != nil {
		ps := h.plans.Stats()
		planCache["hits"] = ps.Hits
		planCache["misses"] = ps.Misses
		planCache["evictions"] = ps.Evictions
		planCache["size"] = ps.Size
		planCache["capacity"] = ps.Capacity
		planCache["epoch"] = h.plans.Epoch()
		planCache["hit_rate"] = telemetry.Rate(ps.Hits, ps.Misses)
	}
	body := map[string]interface{}{
		"uptime_seconds":    snap.UptimeSeconds,
		"endpoints":         snap.Endpoints,
		"cache":             cache,
		"plan_cache":        planCache,
		"gauges":            snap.Gauges,
		"runtime":           snap.Runtime,
		"store_corruptions": h.corruptions.Load(),
		"traces": map[string]interface{}{
			"buffered": len(h.ring.Snapshot()),
			"capacity": h.ring.Cap(),
			"total":    h.ring.Total(),
		},
		"store": map[string]interface{}{
			"method":         h.st.Method().String(),
			"rows":           rows,
			"cols":           cols,
			"stored_numbers": h.st.StoredNumbers(),
			"space_ratio":    store.SpaceRatio(h.st),
		},
	}
	// The paper's cost model, live: U-row reads per reconstruction.
	if us := query.UStats(h.coldStore()); us != nil {
		body["io"] = us.Snapshot()
	}
	if c, ok := h.coldStore().(*core.Store); ok {
		probes, saves := c.ProbeStats()
		body["svdd"] = map[string]interface{}{
			"delta_probes":     probes,
			"bloom_saves":      saves,
			"delta_row_probes": c.RowProbes(),
			"zero_hits":        c.ZeroHits(),
		}
	}
	if h.writable != nil {
		body["ingest"] = h.writable.Stats()
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// handleTraces serves the ring of recently completed traces, newest first.
// Trace names are endpoint patterns and request IDs pass SanitizeRequestID,
// so nothing here can leak a query string or customer label.
func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := h.ring.Snapshot()
	api.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"count":    len(traces),
		"capacity": h.ring.Cap(),
		"total":    h.ring.Total(),
		"traces":   traces,
	})
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := api.HealthzResponse{Status: "ok"}
	if h.opts.SLOObjective > 0 {
		body.SLO = h.tel.Snapshot().SLO
	}
	api.WriteJSON(w, http.StatusOK, body)
}

// --- Helpers ---------------------------------------------------------------

// resolveLabels maps a (row label, column label) pair to indices.
func (h *Handler) resolveLabels(rowLabel, colLabel string) (i, j int, err error) {
	if h.rowIndex == nil && h.colIndex == nil && h.writable == nil {
		return 0, 0, errors.New("store has no axis labels")
	}
	i, ok := h.rowIndex[rowLabel]
	if !ok && h.writable != nil {
		// Rows appended after startup are not in the static index; the tier
		// tracks labels across both segments.
		i, ok = h.writable.LookupRow(rowLabel)
	}
	if !ok {
		return 0, 0, fmt.Errorf("unknown row label %q", rowLabel)
	}
	j, ok = h.colIndex[colLabel]
	if !ok {
		return 0, 0, fmt.Errorf("unknown column label %q", colLabel)
	}
	return i, j, nil
}

// indexLabels builds a label → index map; first occurrence wins for
// duplicates, matching the facade's label resolution.
func indexLabels(ss []string) map[string]int {
	if ss == nil {
		return nil
	}
	m := make(map[string]int, len(ss))
	for i, s := range ss {
		if _, dup := m[s]; !dup {
			m[s] = i
		}
	}
	return m
}

// StatusClientClosedRequest is re-exported from the shared wire contract
// for existing callers; see api.StatusClientClosedRequest.
const StatusClientClosedRequest = api.StatusClientClosedRequest

// fail classifies err through the shared api taxonomy, accounts
// store-corruption surfacing, and writes the unified error envelope.
func (h *Handler) fail(w http.ResponseWriter, r *http.Request, err error) {
	status, code := api.Classify(err)
	api.WriteErrorDetail(w, h.accountStatus(status), api.ErrorDetail{
		Code:      code,
		Message:   err.Error(),
		RequestID: trace.FromContext(r.Context()).ID(),
	})
}

// accountStatus is the monitoring side channel of error classification:
// every corruption surfaced to a client increments the store_corruptions
// counter on /metrics, so a damaged store is visible to monitoring even
// while healthy endpoints keep serving.
func (h *Handler) accountStatus(status int) int {
	if status == http.StatusServiceUnavailable {
		h.corruptions.Inc()
	}
	return status
}
