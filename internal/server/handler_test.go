package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"seqstore/internal/core"
	"seqstore/internal/dataset"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
	"seqstore/internal/query"
	"seqstore/internal/seqerr"
	"seqstore/internal/store"
)

// fakeStore is a fault- and value-injectable store.Store for tests.
type fakeStore struct {
	rows, cols int
	at         func(i, j int) float64
}

func (f *fakeStore) Dims() (int, int) { return f.rows, f.cols }

func (f *fakeStore) Cell(i, j int) (float64, error) {
	if i < 0 || i >= f.rows {
		return 0, fmt.Errorf("fake: row %d out of range %d (%w)", i, f.rows, seqerr.ErrOutOfRange)
	}
	if j < 0 || j >= f.cols {
		return 0, fmt.Errorf("fake: column %d out of range %d (%w)", j, f.cols, seqerr.ErrOutOfRange)
	}
	return f.at(i, j), nil
}

func (f *fakeStore) Row(i int, dst []float64) ([]float64, error) {
	if i < 0 || i >= f.rows {
		return nil, fmt.Errorf("fake: row %d out of range %d (%w)", i, f.rows, seqerr.ErrOutOfRange)
	}
	if cap(dst) < f.cols {
		dst = make([]float64, f.cols)
	}
	dst = dst[:f.cols]
	for j := range dst {
		dst[j] = f.at(i, j)
	}
	return dst, nil
}

func (f *fakeStore) StoredNumbers() int64 { return int64(f.rows * f.cols) }
func (f *fakeStore) Method() store.Method { return store.MethodDCT }

var _ store.Store = (*fakeStore)(nil)

// phoneStore compresses a small phone dataset with SVDD; the raw matrix is
// returned for exact comparisons. Stores are read-only and safe to share,
// so the compression runs once per size and is reused across tests.
var phoneStores sync.Map // n → func() (*core.Store, *linalg.Matrix, error)

func phoneStore(t *testing.T, n int) (*core.Store, *linalg.Matrix) {
	t.Helper()
	build, _ := phoneStores.LoadOrStore(n, sync.OnceValues(func() (interface{}, error) {
		x := dataset.GeneratePhone(dataset.DefaultPhoneConfig(n))
		st, err := core.Compress(matio.NewMem(x), core.Options{Budget: 0.12})
		if err != nil {
			return nil, err
		}
		return [2]interface{}{st, x}, nil
	}))
	v, err := build.(func() (interface{}, error))()
	if err != nil {
		t.Fatal(err)
	}
	pair := v.([2]interface{})
	return pair[0].(*core.Store), pair[1].(*linalg.Matrix)
}

// errMessage digs the human-readable message out of the unified error
// envelope {"error": {"code", "message", "request_id"}}.
func errMessage(t *testing.T, body map[string]interface{}) string {
	t.Helper()
	env, ok := body["error"].(map[string]interface{})
	if !ok {
		t.Fatalf("body has no error envelope: %v", body)
	}
	msg, _ := env["message"].(string)
	if msg == "" {
		t.Fatalf("error envelope has no message: %v", env)
	}
	if code, _ := env["code"].(string); code == "" {
		t.Fatalf("error envelope has no code: %v", env)
	}
	return msg
}

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Handler, *linalg.Matrix) {
	t.Helper()
	st, x := phoneStore(t, 120)
	h := NewHandler(st, nil, opts)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h, x
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: Content-Type = %q", url, ct)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s: decode: %v", url, err)
	}
	return body
}

func TestInfoEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/info", http.StatusOK)
	if body["method"] != "svdd" {
		t.Errorf("method = %v", body["method"])
	}
	if body["rows"].(float64) != 120 || body["cols"].(float64) != 366 {
		t.Errorf("dims = %v×%v", body["rows"], body["cols"])
	}
	if sr := body["spaceRatio"].(float64); sr <= 0 || sr > 0.12+1e-9 {
		t.Errorf("spaceRatio = %v", sr)
	}
}

func TestCellEndpoint(t *testing.T) {
	srv, _, x := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/cell?i=5&j=100", http.StatusOK)
	if body["i"].(float64) != 5 || body["j"].(float64) != 100 {
		t.Errorf("echoed coords wrong: %v", body)
	}
	v, ok := body["value"].(float64)
	if !ok {
		t.Fatal("no numeric value")
	}
	if math.Abs(v-x.At(5, 100)) > 0.5*math.Abs(x.At(5, 100))+50 {
		t.Errorf("cell value %v far from actual %v", v, x.At(5, 100))
	}
	// Errors.
	getJSON(t, srv.URL+"/cell?i=5", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?i=abc&j=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?i=99999&j=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?i=0&j=-1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?row=Nobody&col=We", http.StatusBadRequest)
}

func TestRowEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/row?i=7", http.StatusOK)
	vals := body["values"].([]interface{})
	if len(vals) != 366 {
		t.Errorf("row length %d", len(vals))
	}
	getJSON(t, srv.URL+"/row?i=-1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/row", http.StatusBadRequest)
}

func TestAggEndpoint(t *testing.T) {
	srv, _, x := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/agg?f=avg&rows=0:50&cols=0:30", http.StatusOK)
	got := body["value"].(float64)
	want, err := query.EvaluateMatrix(x, query.Avg,
		query.Selection{Rows: query.All(50), Cols: query.All(30)})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 0.10 {
		t.Errorf("agg value %.4f vs exact %.4f (%.1f%% off)", got, want, 100*rel)
	}
	if body["rows"].(float64) != 50 || body["cols"].(float64) != 30 {
		t.Errorf("selection sizes echoed wrong: %v", body)
	}
	// Default f and default selections (all rows/cols).
	all := getJSON(t, srv.URL+"/agg", http.StatusOK)
	if all["f"] != "avg" {
		t.Errorf("default f = %v", all["f"])
	}
	if all["rows"].(float64) != 120 || all["cols"].(float64) != 366 {
		t.Errorf("default selection = %v×%v", all["rows"], all["cols"])
	}
	// Errors: unknown aggregate, inverted range, garbage, negatives.
	getJSON(t, srv.URL+"/agg?f=median", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?rows=9:1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?cols=zzz", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?rows=-3", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?rows=0:10&cols=999:1000", http.StatusBadRequest)
}

// TestEmptySelectionIs400 pins the satellite fix: an empty (but
// syntactically valid) selection maps to 400, not 500.
func TestEmptySelectionIs400(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/agg?rows=5:5", http.StatusBadRequest)
	if !strings.Contains(errMessage(t, body), "empty selection") {
		t.Errorf("error = %v, want mention of empty selection", body["error"])
	}
}

func TestCountAggExact(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/agg?f=count&rows=0:10&cols=0:10", http.StatusOK)
	if body["value"].(float64) != 100 {
		t.Errorf("count = %v", body["value"])
	}
}

func TestCellByLabelEndpoint(t *testing.T) {
	x := dataset.Toy()
	st, err := core.Compress(matio.NewMem(x), core.Options{Budget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	labels := &store.Labels{Rows: dataset.ToyRowLabels, Cols: dataset.ToyColLabels}
	srv := httptest.NewServer(NewHandler(st, labels, Options{}))
	defer srv.Close()
	body := getJSON(t, srv.URL+"/cell?row=KLM+Co.&col=We", http.StatusOK)
	if v := body["value"].(float64); math.Abs(v-x.At(3, 0)) > 1e-6 {
		t.Errorf("KLM/We = %v, want %v", v, x.At(3, 0))
	}
	getJSON(t, srv.URL+"/cell?row=Nobody&col=We", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?row=KLM+Co.&col=Zz", http.StatusBadRequest)
}

// TestMethodNotAllowed pins the satellite fix: non-GET verbs get 405 with
// an Allow header on every endpoint.
func TestMethodNotAllowed(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	for _, path := range []string{"/info", "/cell", "/cells", "/row", "/rows", "/agg", "/metrics", "/healthz"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodHead} {
			req, err := http.NewRequest(method, srv.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s: Allow = %q, want GET", method, path, allow)
			}
		}
	}
}

// TestNonFiniteValues pins the writeJSON fix: NaN/±Inf reconstructions
// serialize as null with a "nonfinite" marker and a 200 — never a
// truncated response or a spurious 500.
func TestNonFiniteValues(t *testing.T) {
	fs := &fakeStore{rows: 3, cols: 4, at: func(i, j int) float64 {
		switch {
		case i == 0 && j == 0:
			return math.NaN()
		case i == 0 && j == 1:
			return math.Inf(1)
		case i == 0 && j == 2:
			return math.Inf(-1)
		}
		return float64(i*10 + j)
	}}
	srv := httptest.NewServer(NewHandler(fs, nil, Options{}))
	defer srv.Close()

	body := getJSON(t, srv.URL+"/cell?i=0&j=0", http.StatusOK)
	if body["value"] != nil || body["nonfinite"] != "NaN" {
		t.Errorf("NaN cell: %v", body)
	}
	body = getJSON(t, srv.URL+"/cell?i=0&j=1", http.StatusOK)
	if body["value"] != nil || body["nonfinite"] != "+Inf" {
		t.Errorf("+Inf cell: %v", body)
	}
	body = getJSON(t, srv.URL+"/cell?i=0&j=2", http.StatusOK)
	if body["value"] != nil || body["nonfinite"] != "-Inf" {
		t.Errorf("-Inf cell: %v", body)
	}
	// A finite cell has no marker.
	body = getJSON(t, srv.URL+"/cell?i=1&j=1", http.StatusOK)
	if _, marked := body["nonfinite"]; marked {
		t.Errorf("finite cell carries marker: %v", body)
	}
	// Rows map non-finite cells to null and count them.
	body = getJSON(t, srv.URL+"/row?i=0", http.StatusOK)
	vals := body["values"].([]interface{})
	if vals[0] != nil || vals[1] != nil || vals[2] != nil || vals[3] == nil {
		t.Errorf("row values = %v", vals)
	}
	if body["nonfinite"].(float64) != 3 {
		t.Errorf("nonfinite count = %v, want 3", body["nonfinite"])
	}
	// NaN aggregates: avg over a NaN cell is NaN → null + marker, 200.
	body = getJSON(t, srv.URL+"/agg?f=avg&rows=0:1&cols=0:1", http.StatusOK)
	if body["value"] != nil || body["nonfinite"] != "NaN" {
		t.Errorf("NaN agg: %v", body)
	}
}

func TestCellsBatchEndpoint(t *testing.T) {
	srv, _, x := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/cells?at=5:100,5:101&at=6:100", http.StatusOK)
	if body["count"].(float64) != 3 {
		t.Fatalf("count = %v", body["count"])
	}
	cells := body["cells"].([]interface{})
	first := cells[0].(map[string]interface{})
	if first["i"].(float64) != 5 || first["j"].(float64) != 100 {
		t.Errorf("first cell coords: %v", first)
	}
	if v := first["value"].(float64); math.Abs(v-x.At(5, 100)) > 0.5*math.Abs(x.At(5, 100))+50 {
		t.Errorf("first cell value %v vs actual %v", v, x.At(5, 100))
	}
	// Errors.
	getJSON(t, srv.URL+"/cells", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cells?at=5", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cells?at=a:b", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cells?at=99999:0", http.StatusBadRequest)
}

func TestCellsBatchLimit(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{MaxBatchCells: 2})
	getJSON(t, srv.URL+"/cells?at=0:0,0:1", http.StatusOK)
	body := getJSON(t, srv.URL+"/cells?at=0:0,0:1,0:2", http.StatusBadRequest)
	if !strings.Contains(errMessage(t, body), "exceeds limit") {
		t.Errorf("error = %v", body["error"])
	}
}

func TestRowsBatchEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/rows?i=0:3,7", http.StatusOK)
	if body["count"].(float64) != 4 {
		t.Fatalf("count = %v", body["count"])
	}
	rows := body["rows"].([]interface{})
	last := rows[3].(map[string]interface{})
	if last["i"].(float64) != 7 {
		t.Errorf("last row index: %v", last["i"])
	}
	if len(last["values"].([]interface{})) != 366 {
		t.Errorf("row length %d", len(last["values"].([]interface{})))
	}
	// Errors: missing spec, empty spec, negative, out of range, over limit.
	getJSON(t, srv.URL+"/rows", http.StatusBadRequest)
	getJSON(t, srv.URL+"/rows?i=4:4", http.StatusBadRequest)
	getJSON(t, srv.URL+"/rows?i=-1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/rows?i=99999", http.StatusBadRequest)
}

func TestRowsBatchLimit(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{MaxBatchRows: 3})
	getJSON(t, srv.URL+"/rows?i=0:3", http.StatusOK)
	body := getJSON(t, srv.URL+"/rows?i=0:4", http.StatusBadRequest)
	if !strings.Contains(errMessage(t, body), "exceeds limit") {
		t.Errorf("error = %v", body["error"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{CacheRows: 64})
	// Generate some traffic first: hits, misses, an error.
	getJSON(t, srv.URL+"/cell?i=5&j=100", http.StatusOK)
	getJSON(t, srv.URL+"/cell?i=5&j=101", http.StatusOK)
	getJSON(t, srv.URL+"/cell?i=99999&j=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?f=sum&rows=0:10&cols=0:10", http.StatusOK)

	body := getJSON(t, srv.URL+"/metrics", http.StatusOK)
	eps := body["endpoints"].(map[string]interface{})
	cell := eps["/cell"].(map[string]interface{})
	if cell["requests"].(float64) != 3 || cell["errors"].(float64) != 1 {
		t.Errorf("/cell endpoint metrics: %v", cell)
	}
	lat := cell["latency"].(map[string]interface{})
	if lat["count"].(float64) != 3 || lat["p50_ms"].(float64) < 0 {
		t.Errorf("/cell latency: %v", lat)
	}
	if _, ok := lat["buckets"]; !ok {
		t.Errorf("latency histogram has no buckets: %v", lat)
	}
	cache := body["cache"].(map[string]interface{})
	if cache["enabled"] != true {
		t.Errorf("cache disabled in metrics: %v", cache)
	}
	// Second cell of the same row was a hit.
	if cache["hits"].(float64) < 1 || cache["misses"].(float64) < 1 {
		t.Errorf("cache counters: %v", cache)
	}
	if hr := cache["hit_rate"].(float64); hr <= 0 || hr >= 1 {
		t.Errorf("hit_rate = %v", hr)
	}
	// Disk-access counters of the SVDD U backing are present.
	io := body["io"].(map[string]interface{})
	if io["row_reads"].(float64) <= 0 {
		t.Errorf("io counters: %v", io)
	}
	if _, ok := body["svdd"]; !ok {
		t.Errorf("svdd section missing: %v", body)
	}
}

// TestMetricsOneAccessPerCell verifies the paper's cost-model claim
// through the serving stack: with the cache disabled, N distinct /cell
// requests cost exactly N U-row reads.
func TestMetricsOneAccessPerCell(t *testing.T) {
	st, _ := phoneStore(t, 60)
	h := NewHandler(st, nil, Options{})
	srv := httptest.NewServer(h)
	defer srv.Close()
	us := query.UStats(st)
	if us == nil {
		t.Fatal("no U stats on svdd store")
	}
	us.Reset()
	const n = 17
	for i := 0; i < n; i++ {
		getJSON(t, fmt.Sprintf("%s/cell?i=%d&j=%d", srv.URL, i, i*3), http.StatusOK)
	}
	if got := us.Snapshot().RowReads; got != n {
		t.Errorf("%d cell queries cost %d U-row reads, want exactly %d", n, got, n)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	body := getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Errorf("healthz: %v", body)
	}
}

// TestCacheServesRepeatedRows checks the cache fast path end to end: the
// same row requested twice is reconstructed once, and values agree with
// the uncached path.
func TestCacheServesRepeatedRows(t *testing.T) {
	st, _ := phoneStore(t, 60)
	cached := NewHandler(st, nil, Options{CacheRows: 16})
	plain := NewHandler(st, nil, Options{})
	csrv := httptest.NewServer(cached)
	defer csrv.Close()
	psrv := httptest.NewServer(plain)
	defer psrv.Close()

	want := getJSON(t, psrv.URL+"/row?i=9", http.StatusOK)
	for range [3]int{} {
		got := getJSON(t, csrv.URL+"/row?i=9", http.StatusOK)
		if fmt.Sprint(got["values"]) != fmt.Sprint(want["values"]) {
			t.Fatal("cached row differs from uncached row")
		}
	}
	hits, misses, size, capacity := cached.CacheStats()
	if misses != 1 || hits != 2 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if size != 1 || capacity < 16 {
		t.Errorf("size=%d capacity=%d", size, capacity)
	}
}

// corruptStore fails every read with a corruption error, as a store backed
// by a damaged file would.
type corruptStore struct{ fakeStore }

func (c *corruptStore) Cell(i, j int) (float64, error) {
	return 0, seqerr.Corrupt("/data/p.sqz", 3, 12345, "page checksum mismatch")
}

func (c *corruptStore) Row(i int, dst []float64) ([]float64, error) {
	return nil, seqerr.Corrupt("/data/p.sqz", 3, 12345, "page checksum mismatch")
}

// TestCorruptStoreReturns503 pins the corruption contract at the serving
// layer: a store that detects damage yields 503 (not 500, not wrong data),
// the store_corruptions counter on /metrics increments per surfaced error,
// and endpoints that do not touch the damaged pages keep serving.
func TestCorruptStoreReturns503(t *testing.T) {
	cs := &corruptStore{fakeStore{rows: 4, cols: 4, at: func(i, j int) float64 { return 0 }}}
	srv := httptest.NewServer(NewHandler(cs, nil, Options{}))
	defer srv.Close()

	body := getJSON(t, srv.URL+"/cell?i=0&j=0", http.StatusServiceUnavailable)
	if !strings.Contains(errMessage(t, body), "checksum") {
		t.Errorf("error = %v", body["error"])
	}
	getJSON(t, srv.URL+"/row?i=1", http.StatusServiceUnavailable)
	getJSON(t, srv.URL+"/v1/row?i=1", http.StatusServiceUnavailable)

	// Health and metadata endpoints stay up: corruption is not an outage.
	getJSON(t, srv.URL+"/healthz", http.StatusOK)
	getJSON(t, srv.URL+"/info", http.StatusOK)

	metrics := getJSON(t, srv.URL+"/metrics", http.StatusOK)
	if n := metrics["store_corruptions"].(float64); n != 3 {
		t.Errorf("store_corruptions = %v, want 3", n)
	}
}

// TestV1PathsAndDeprecationHeaders pins the API-versioning satellite: every
// endpoint is served under /v1/, the legacy alias still works but is marked
// with Deprecation and Link headers, and the /v1/ path carries neither.
func TestV1PathsAndDeprecationHeaders(t *testing.T) {
	srv, _, _ := newTestServer(t, Options{})
	for _, ep := range []string{"info", "healthz", "metrics"} {
		legacy, err := http.Get(srv.URL + "/" + ep)
		if err != nil {
			t.Fatal(err)
		}
		legacy.Body.Close()
		if legacy.StatusCode != http.StatusOK {
			t.Errorf("/%s: status %d", ep, legacy.StatusCode)
		}
		if legacy.Header.Get("Deprecation") != "true" {
			t.Errorf("/%s: no Deprecation header", ep)
		}
		wantLink := fmt.Sprintf("</v1/%s>; rel=\"successor-version\"", ep)
		if got := legacy.Header.Get("Link"); got != wantLink {
			t.Errorf("/%s: Link = %q, want %q", ep, got, wantLink)
		}

		v1, err := http.Get(srv.URL + "/v1/" + ep)
		if err != nil {
			t.Fatal(err)
		}
		v1.Body.Close()
		if v1.StatusCode != http.StatusOK {
			t.Errorf("/v1/%s: status %d", ep, v1.StatusCode)
		}
		if v1.Header.Get("Deprecation") != "" || v1.Header.Get("Link") != "" {
			t.Errorf("/v1/%s: carries deprecation headers", ep)
		}
	}
	// Value parity across the alias.
	legacy := getJSON(t, srv.URL+"/cell?i=5&j=100", http.StatusOK)
	v1 := getJSON(t, srv.URL+"/v1/cell?i=5&j=100", http.StatusOK)
	if legacy["value"] != v1["value"] {
		t.Errorf("alias value %v != v1 value %v", legacy["value"], v1["value"])
	}
}

// TestCancelledRequestIs499 pins the context satellite: a client that goes
// away mid-aggregation is recorded with the nginx-convention 499 status,
// not a 500.
func TestCancelledRequestIs499(t *testing.T) {
	srv, h, _ := newTestServer(t, Options{})
	_ = srv
	req := httptest.NewRequest(http.MethodGet, "/v1/agg?f=avg", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // already gone before the query starts
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != StatusClientClosedRequest {
		t.Errorf("cancelled /agg: status %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}
