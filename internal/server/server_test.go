package server

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seqstore/internal/dataset"
	"seqstore/internal/matio"
	"seqstore/internal/store"
	"seqstore/internal/svd"
)

// blockingStore gates Row reconstruction on a channel, so tests can hold a
// request in flight inside the handler while shutting the server down.
type blockingStore struct {
	store.Store
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func (b *blockingStore) Row(i int, dst []float64) ([]float64, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return b.Store.Row(i, dst)
}

// TestGracefulShutdownDrainsInflight proves the drain: a request blocked
// inside reconstruction when SIGTERM-equivalent cancellation fires still
// completes with a 200, and only then does Run return.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	fs := &fakeStore{rows: 4, cols: 4, at: func(i, j int) float64 { return float64(i + j) }}
	bs := &blockingStore{
		Store:   fs,
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv := New(bs, nil, Config{Addr: "127.0.0.1:0", ShutdownTimeout: 5 * time.Second})
	l, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx, l) }()

	base := "http://" + l.Addr().String()
	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/row?i=1")
		if err != nil {
			resc <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resc <- result{status: resp.StatusCode}
	}()

	<-bs.started // the request is now inside the handler
	cancel()     // trigger graceful shutdown

	// Shutdown must wait for the in-flight request, not race past it.
	select {
	case err := <-runErr:
		t.Fatalf("Run returned (%v) while a request was still in flight", err)
	case <-time.After(150 * time.Millisecond):
	}

	close(bs.release)
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", res.status)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run = %v, want nil after clean drain", err)
	}
	// The listener is closed: new connections must fail.
	c := http.Client{Timeout: time.Second}
	if _, err := c.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

func TestRunReturnsOnListenerError(t *testing.T) {
	fs := &fakeStore{rows: 1, cols: 1, at: func(i, j int) float64 { return 0 }}
	srv := New(fs, nil, Config{Addr: "127.0.0.1:0"})
	l, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background(), l) }()
	l.Close() // underlying accept fails → Run must return promptly
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run = nil after listener error, want error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after the listener was closed")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Addr != ":8080" || c.ReadHeaderTimeout != 5*time.Second ||
		c.ReadTimeout != 10*time.Second || c.WriteTimeout != 60*time.Second ||
		c.IdleTimeout != 120*time.Second || c.MaxHeaderBytes != 1<<20 ||
		c.ShutdownTimeout != 10*time.Second {
		t.Errorf("defaults = %+v", c)
	}
}

// fileBackedStore builds an SVD store whose U matrix lives in an .smx file
// on disk — the paper's operating point, where every cell reconstruction is
// one real disk access.
func fileBackedStore(t *testing.T) *svd.Store {
	t.Helper()
	x := dataset.GeneratePhone(dataset.DefaultPhoneConfig(80))
	src := matio.NewMem(x)
	f, err := svd.ComputeFactors(src)
	if err != nil {
		t.Fatal(err)
	}
	k := f.Clamp(8)
	path := filepath.Join(t.TempDir(), "u.smx")
	w, err := matio.Create(path, x.Rows(), k)
	if err != nil {
		t.Fatal(err)
	}
	if err := svd.ComputeU(src, f, k, func(i int, urow []float64) error {
		return w.WriteRow(urow)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	uf, err := matio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { uf.Close() })
	st, err := svd.New(f, k, uf)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentQueriesFileBacked hammers /cell, /row, /agg and /metrics
// concurrently against a File-backed store with the row cache enabled.
// Run under -race (make check does) it proves the serving hot path — the
// sharded cache, the telemetry counters, and the matio stats — is
// data-race free over a real disk-resident U.
func TestConcurrentQueriesFileBacked(t *testing.T) {
	st := fileBackedStore(t)
	h := NewHandler(st, nil, Options{CacheRows: 32})
	srv := httptest.NewServer(h)
	defer srv.Close()

	n, m := st.Dims()
	const workers = 8
	const perWorker = 60
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < perWorker; it++ {
				var url string
				switch it % 4 {
				case 0:
					url = fmt.Sprintf("%s/cell?i=%d&j=%d", srv.URL, rng.Intn(n), rng.Intn(m))
				case 1:
					url = fmt.Sprintf("%s/row?i=%d", srv.URL, rng.Intn(n))
				case 2:
					lo := rng.Intn(n - 1)
					url = fmt.Sprintf("%s/agg?f=sum&rows=%d:%d&cols=0:20", srv.URL, lo, lo+1+rng.Intn(n-lo-1))
				case 3:
					url = srv.URL + "/metrics"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	hits, misses, size, capacity := h.CacheStats()
	if hits+misses == 0 {
		t.Error("cache saw no traffic")
	}
	if size > capacity {
		t.Errorf("cache size %d exceeds capacity %d", size, capacity)
	}
	// Every reconstruction (cache miss or /agg row scan) is exactly one
	// U-row read; cache hits cost zero. The counters must be consistent.
	if us := st.UStats(); us.Snapshot().RowReads == 0 {
		t.Error("no U-row reads recorded under load")
	}
}
