package seqstore

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	x := NewMatrix(3, 4)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 {
		t.Error("Set/At failed")
	}
	if r, c := x.Dims(); r != 3 || c != 4 {
		t.Errorf("Dims = (%d,%d)", r, c)
	}
	x.SetRow(0, []float64{1, 2, 3, 4})
	row := x.Row(0)
	if row[3] != 4 {
		t.Errorf("Row = %v", row)
	}
	row[0] = 99
	if x.At(0, 0) == 99 {
		t.Error("Row must return a copy")
	}
}

func TestFromRowsAndHead(t *testing.T) {
	x := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	h := x.Head(2)
	if r, _ := h.Dims(); r != 2 {
		t.Errorf("Head rows = %d", r)
	}
	if h.At(1, 1) != 4 {
		t.Error("Head content wrong")
	}
	if r, _ := x.Head(10).Dims(); r != 3 {
		t.Error("Head should clamp")
	}
}

func TestCompressRequiresBudgetOrK(t *testing.T) {
	x := Toy()
	if _, err := Compress(x, Options{Method: SVD}); !errors.Is(err, ErrNoBudget) {
		t.Errorf("err = %v, want ErrNoBudget", err)
	}
}

func TestCompressUnknownMethod(t *testing.T) {
	if _, err := Compress(Toy(), Options{Method: "fourier", Budget: 0.5}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestCompressDefaultsToSVDD(t *testing.T) {
	x := GeneratePhone(100)
	st, err := Compress(x, Options{Budget: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Method() != SVDD {
		t.Errorf("default method = %v, want svdd", st.Method())
	}
	if _, ok := st.SVDDInfo(); !ok {
		t.Error("SVDDInfo unavailable for an SVDD store")
	}
}

func TestAllMethodsCompressAndReconstruct(t *testing.T) {
	x := GeneratePhone(120)
	for _, m := range []Method{SVDD, SVD, DCT, Cluster, Wavelet} {
		st, err := Compress(x, Options{Method: m, Budget: 0.15})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if st.Method() != m {
			t.Errorf("method = %v, want %v", st.Method(), m)
		}
		if m == Wavelet {
			// Persistence works for every method; spot-check the newest.
			path := filepath.Join(t.TempDir(), "w.sqz")
			if err := st.Save(path); err != nil {
				t.Fatalf("wavelet save: %v", err)
			}
			if _, err := Open(path); err != nil {
				t.Fatalf("wavelet open: %v", err)
			}
		}
		if got := st.SpaceRatio(); got > 0.15+1e-9 {
			t.Errorf("%v: space ratio %.4f over budget", m, got)
		}
		if _, err := st.Cell(5, 100); err != nil {
			t.Errorf("%v: Cell: %v", m, err)
		}
		row, err := st.Row(7)
		if err != nil {
			t.Errorf("%v: Row: %v", m, err)
		}
		if len(row) != 366 {
			t.Errorf("%v: row length %d", m, len(row))
		}
		rep, err := st.Evaluate(x)
		if err != nil {
			t.Errorf("%v: Evaluate: %v", m, err)
		}
		if rep.RMSPE <= 0 || rep.RMSPE > 1.5 {
			t.Errorf("%v: implausible RMSPE %v", m, rep.RMSPE)
		}
		if rep.String() == "" {
			t.Error("empty report string")
		}
	}
}

func TestCompressWithExplicitK(t *testing.T) {
	x := GeneratePhone(80)
	st, err := Compress(x, Options{Method: SVD, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// N·k + k + k·M = 80·5 + 5 + 5·366
	if got := st.StoredNumbers(); got != 80*5+5+5*366 {
		t.Errorf("StoredNumbers = %d", got)
	}
}

func TestSVDDInfoOnlyForSVDD(t *testing.T) {
	x := GeneratePhone(60)
	st, err := Compress(x, Options{Method: DCT, Budget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.SVDDInfo(); ok {
		t.Error("SVDDInfo should be unavailable for DCT")
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	x := GeneratePhone(60)
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.sqz")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method() != SVDD {
		t.Errorf("method = %v", got.Method())
	}
	for _, cell := range [][2]int{{0, 0}, {30, 200}, {59, 365}} {
		a, _ := st.Cell(cell[0], cell[1])
		b, err := got.Cell(cell[0], cell[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("cell %v differs after save/open", cell)
		}
	}
}

func TestMatrixFileRoundTripAndCompressFile(t *testing.T) {
	x := GeneratePhone(50)
	dir := t.TempDir()
	mpath := filepath.Join(dir, "data.smx")
	if err := SaveMatrix(mpath, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadMatrix(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(10, 100) != x.At(10, 100) {
		t.Error("matrix round trip failed")
	}
	st, err := CompressFile(mpath, Options{Method: SVDD, Budget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	stMem, err := Compress(x, Options{Method: SVDD, Budget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := st.Cell(20, 50)
	b, _ := stMem.Cell(20, 50)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("file and memory compression disagree: %v vs %v", a, b)
	}
	// Cluster via file needs full read; just ensure it works.
	if _, err := CompressFile(mpath, Options{Method: Cluster, Budget: 0.2}); err != nil {
		t.Fatalf("cluster from file: %v", err)
	}
}

func TestAggregate(t *testing.T) {
	x := GeneratePhone(100)
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	rows := Range(0, 50)
	cols := Range(0, 30)
	truth, err := AggregateExact(x, Avg, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	est, err := st.Aggregate(Avg, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.05 {
		t.Errorf("aggregate error %.3f, want under 5%%", rel)
	}
	// Unknown aggregate.
	if _, err := st.Aggregate("median", rows, cols); err == nil {
		t.Error("unknown aggregate accepted")
	}
	// Count is exact.
	cnt, _ := st.Aggregate(Count, rows, cols)
	if cnt != 1500 {
		t.Errorf("Count = %v", cnt)
	}
}

func TestRandomSelectionHelper(t *testing.T) {
	rows, cols := RandomSelection(100, 50, 0.1, 42)
	frac := float64(len(rows)*len(cols)) / 5000
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("selection fraction %.3f", frac)
	}
	r2, c2 := RandomSelection(100, 50, 0.1, 42)
	if len(r2) != len(rows) || len(c2) != len(cols) {
		t.Error("RandomSelection not deterministic")
	}
}

func TestRangeHelpers(t *testing.T) {
	if got := Range(2, 5); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("Range = %v", got)
	}
	if got := AllRows(3); len(got) != 3 || got[2] != 2 {
		t.Errorf("AllRows = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted Range did not panic")
		}
	}()
	Range(5, 2)
}

func TestEvaluateDimsMismatch(t *testing.T) {
	x := GeneratePhone(50)
	st, _ := Compress(x, Options{Method: SVD, Budget: 0.1})
	if _, err := st.Evaluate(GeneratePhone(60)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestProjectionAPI(t *testing.T) {
	x := GeneratePhone(150)
	pts, err := Project(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 150 {
		t.Fatalf("got %d points", len(pts))
	}
	plot := ScatterPlot(pts, 40, 12)
	if !strings.Contains(plot, "150 points") {
		t.Error("scatter plot missing point count")
	}
	var buf bytes.Buffer
	if err := WriteProjectionCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "row,pc1,pc2") {
		t.Error("CSV header missing")
	}
	out := ProjectionOutliers(pts, 5)
	if len(out) != 5 {
		t.Errorf("outliers = %v", out)
	}
}

func TestToyLabels(t *testing.T) {
	rows, cols := ToyLabels()
	if len(rows) != 7 || len(cols) != 5 {
		t.Error("label lengths wrong")
	}
	rows[0] = "mutated"
	r2, _ := ToyLabels()
	if r2[0] == "mutated" {
		t.Error("ToyLabels must return copies")
	}
}

func TestStocksGenerator(t *testing.T) {
	x := GenerateStocks()
	if r, c := x.Dims(); r != 381 || c != 128 {
		t.Errorf("stocks dims = (%d,%d)", r, c)
	}
}

func TestCSVFacade(t *testing.T) {
	x := GeneratePhone(10)
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := SaveMatrixCSV(path, x); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrixCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(5, 100) != x.At(5, 100) {
		t.Error("csv round trip failed")
	}
	if _, err := LoadMatrixCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestKMeansMethod(t *testing.T) {
	x := GeneratePhone(150)
	st, err := Compress(x, Options{Method: KMeans, Budget: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// KMeans produces a cluster-shaped store.
	if st.Method() != Cluster {
		t.Errorf("method = %v, want cluster-shaped store", st.Method())
	}
	if st.SpaceRatio() > 0.15+1e-9 {
		t.Errorf("over budget: %v", st.SpaceRatio())
	}
	rep, err := st.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSPE <= 0 || rep.RMSPE > 1 {
		t.Errorf("implausible RMSPE %v", rep.RMSPE)
	}
}
