package seqstore

import (
	"fmt"
	"io"
	"os"

	"seqstore/internal/dataset"
)

// WriteCSV emits the dataset as comma-separated values (one sequence per
// line), formatted so ReadCSV round-trips bit-exactly.
func WriteCSV(w io.Writer, x *Matrix) error { return dataset.WriteCSV(w, x.m) }

// ReadCSV parses a dataset from comma-separated values. Blank lines,
// '#'-comments and a non-numeric header line are skipped.
func ReadCSV(r io.Reader) (*Matrix, error) {
	m, err := dataset.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Matrix{m: m}, nil
}

// SaveMatrixCSV writes the dataset to a CSV file.
func SaveMatrixCSV(path string, x *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("seqstore: save csv: %w", err)
	}
	if err := WriteCSV(f, x); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadMatrixCSV reads a dataset from a CSV file.
func LoadMatrixCSV(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqstore: load csv: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}
