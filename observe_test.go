package seqstore

import (
	"context"
	"testing"
)

// TestWithCostAttributesAggregates: a ledger attached via WithCost picks up
// the disk accesses of a facade aggregate, and the traced evaluation
// returns the same value as the untraced one.
func TestWithCostAttributesAggregates(t *testing.T) {
	x := GeneratePhone(64)
	st, err := Compress(x, Options{Budget: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_, m := x.Dims()
	rows, cols := seqIdx(0, 64), seqIdx(0, m)

	// Same worker count on both sides: Sum's summation order is only
	// deterministic for a fixed count, and adaptive chunking parallelizes
	// even small selections.
	want, err := st.AggregateOpts(Sum, rows, cols, AggOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var led CostLedger
	ctx := WithCost(context.Background(), &led)
	got, err := st.AggregateContext(ctx, Sum, rows, cols, AggOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("traced aggregate %v != untraced %v", got, want)
	}
	cost := led.Snapshot()
	if cost.DiskAccesses == 0 || cost.RowsRead == 0 {
		t.Errorf("ledger empty after traced aggregate: %+v", cost)
	}
	if CostFrom(ctx) != &led {
		t.Error("CostFrom did not return the attached ledger")
	}
}

// TestCostFromUntraced: an untraced context yields a nil (but usable)
// ledger.
func TestCostFromUntraced(t *testing.T) {
	led := CostFrom(context.Background())
	if led != nil {
		t.Fatalf("expected nil ledger, got %+v", led)
	}
	led.AddRowsRead(1) // nil-safe no-op
	if s := led.Snapshot(); s.RowsRead != 0 {
		t.Errorf("nil ledger snapshot not zero: %+v", s)
	}
}

func seqIdx(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
