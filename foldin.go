package seqstore

import (
	"fmt"

	"seqstore/internal/core"
	"seqstore/internal/svd"
)

// FoldIn appends a new sequence to an SVD- or SVDD-backed store without
// recompressing, by projecting it onto the existing principal components
// (the classic folding-in technique). For SVDD stores, up to maxDeltas of
// the new row's worst-reconstructed cells are additionally pinned with
// exact deltas; maxDeltas is ignored for plain SVD.
//
// Folding in trades accuracy for convenience: rows far outside the
// subspace captured at compression time reconstruct poorly (except their
// pinned cells). Recompress offline once enough rows have accumulated — the
// paper's batched-updates assumption (§1). Returns the new row's index.
func (st *Store) FoldIn(row []float64, maxDeltas int) (int, error) {
	switch s := st.s.(type) {
	case *core.Store:
		return s.FoldIn(row, maxDeltas)
	case *svd.Store:
		return s.FoldIn(row)
	default:
		return 0, fmt.Errorf("seqstore: %s stores do not support fold-in", st.Method())
	}
}
