package seqstore

import (
	"fmt"

	"seqstore/internal/core"
	"seqstore/internal/svd"
)

// FoldIn appends a new sequence to an SVD- or SVDD-backed store without
// recompressing, by projecting it onto the existing principal components
// (the classic folding-in technique). For SVDD stores, up to maxDeltas of
// the new row's worst-reconstructed cells are additionally pinned with
// exact deltas; maxDeltas is ignored for plain SVD.
//
// Folding in trades accuracy for convenience: rows far outside the
// subspace captured at compression time reconstruct poorly (except their
// pinned cells). Recompress once enough rows have accumulated — the
// paper's batched-updates assumption (§1). The online ingestion tier
// (internal/ingest) automates exactly that: it batches appended rows in a
// WAL-backed hot segment, folds them in as they cool, and recompresses
// past a delta-growth threshold.
//
// Error contract: FoldIn either appends the row completely and returns its
// index with a nil error, or leaves the store untouched and returns (-1,
// err). It never reports index 0 for a row that exists, and a failure
// mid-fold is rolled back rather than leaving the store half-mutated. If
// the store carries row labels, the new row is appended with an empty
// label (rename it with SetLabels), so labels, Dims and Save stay in
// agreement after a fold-in.
//
// FoldIn takes the store's write lock, so it is safe to call concurrently
// with queries: readers observe the store either entirely before or
// entirely after the append, never mid-mutation.
func (st *Store) FoldIn(row []float64, maxDeltas int) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var (
		idx int
		err error
	)
	switch s := st.s.(type) {
	case *core.Store:
		idx, err = s.FoldIn(row, maxDeltas)
	case *svd.Store:
		idx, err = s.FoldIn(row)
	default:
		return -1, fmt.Errorf("seqstore: %s stores do not support fold-in", st.s.Method())
	}
	if err != nil {
		return idx, err
	}
	// Keep row labels in lockstep with the grown store: the new row gets an
	// empty label so RowLabels/Save and Dims never disagree.
	if st.labels != nil && st.labels.Rows != nil {
		st.labels.Rows = append(st.labels.Rows, "")
	}
	return idx, nil
}
