package seqstore

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"seqstore/internal/core"
	"seqstore/internal/dataset"
	"seqstore/internal/matio"
	"seqstore/internal/svd"
)

// TestOutOfCoreEndToEnd exercises the full production flow across modules:
// a dataset is streamed to disk (never fully in memory), compressed by
// streaming the file (3 passes), the U matrix is written to its own disk
// file, and cell queries are answered with exactly one disk access each.
func TestOutOfCoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "phone.smx")
	uPath := filepath.Join(dir, "u.smx")

	// 1. Generate straight to disk via the streaming source.
	cfg := dataset.DefaultPhoneConfig(500)
	cfg.M = 120
	src := dataset.NewPhoneSource(cfg)
	w, err := matio.Create(dataPath, cfg.N, cfg.M)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ScanRows(func(i int, row []float64) error { return w.WriteRow(row) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Open the file and run SVDD's passes against it.
	f, err := matio.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	factors, err := svd.ComputeFactors(f)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.CompressWithFactors(f, factors, core.Options{Budget: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Passes(); got != 2 {
		t.Errorf("compression made %d passes over the data file, want 2", got)
	}

	// 3. Re-home U on disk: write the in-memory U out and rebuild the
	//    plain-SVD core around the disk file.
	k := st.K()
	uw, err := matio.Create(uPath, cfg.N, k)
	if err != nil {
		t.Fatal(err)
	}
	urow := make([]float64, k)
	for i := 0; i < cfg.N; i++ {
		if err := st.Base().URow(i, urow); err != nil {
			t.Fatal(err)
		}
		if err := uw.WriteRow(urow); err != nil {
			t.Fatal(err)
		}
	}
	if err := uw.Close(); err != nil {
		t.Fatal(err)
	}
	uf, err := matio.Open(uPath)
	if err != nil {
		t.Fatal(err)
	}
	defer uf.Close()
	diskBase, err := svd.New(factors, k, uf)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Query: one disk access per cell, values identical to the
	//    memory-backed base.
	before := uf.Stats().RowReads()
	for _, cell := range [][2]int{{0, 0}, {250, 60}, {499, 119}} {
		dv, err := diskBase.Cell(cell[0], cell[1])
		if err != nil {
			t.Fatal(err)
		}
		mv, err := st.Base().Cell(cell[0], cell[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dv-mv) > 1e-12 {
			t.Errorf("disk/memory disagree at %v: %v vs %v", cell, dv, mv)
		}
	}
	if got := uf.Stats().RowReads() - before; got != 3 {
		t.Errorf("3 cell queries used %d disk accesses, want 3", got)
	}

	// 5. Accuracy against the original stream.
	var sse, dev float64
	mean := 0.0
	var count int
	f2 := dataset.NewPhoneSource(cfg)
	f2.ScanRows(func(i int, row []float64) error {
		for _, v := range row {
			mean += v
			count++
		}
		return nil
	})
	mean /= float64(count)
	buf := make([]float64, cfg.M)
	err = dataset.NewPhoneSource(cfg).ScanRows(func(i int, row []float64) error {
		got, err := st.Row(i, buf)
		if err != nil {
			return err
		}
		for j := range row {
			d := got[j] - row[j]
			sse += d * d
			dv := row[j] - mean
			dev += dv * dv
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rmspe := math.Sqrt(sse / dev); rmspe > 0.25 {
		t.Errorf("out-of-core RMSPE %.3f, expected < 0.25", rmspe)
	}
}

// TestConcurrentQueries verifies that a compressed store answers cell and
// aggregate queries correctly under concurrency (run with -race).
func TestConcurrentQueries(t *testing.T) {
	x := GeneratePhone(200)
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]float64{}
	cells := [][2]int{{0, 0}, {50, 100}, {199, 365}, {120, 7}}
	for _, c := range cells {
		want[c], _ = st.Cell(c[0], c[1])
	}
	rows := Range(0, 100)
	cols := Range(0, 50)
	wantAgg, err := st.Aggregate(Sum, rows, cols)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				for _, c := range cells {
					v, err := st.Cell(c[0], c[1])
					if err != nil {
						errs <- err
						return
					}
					if v != want[c] {
						errs <- errValue
						return
					}
				}
				a, err := st.Aggregate(Sum, rows, cols)
				if err != nil {
					errs <- err
					return
				}
				if a != wantAgg {
					errs <- errValue
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errValue = &valueError{}

type valueError struct{}

func (*valueError) Error() string { return "concurrent query returned a different value" }
