package seqstore

import (
	"math"
	"math/rand"
	"testing"
)

// TestCompressWorkersFacade checks the Workers option end to end: the
// sharded pipeline must produce the same store shape as the serial one and
// reconstruct cells within floating-point reduction tolerance, for both
// SVDD and plain SVD.
func TestCompressWorkersFacade(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const n, m = 3000, 16
	x := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		a := r.NormFloat64()
		for j := 0; j < m; j++ {
			x.Set(i, j, 2*a*float64(j%5)+r.NormFloat64())
		}
	}
	for _, method := range []Method{SVDD, SVD} {
		serial, err := Compress(x, Options{Method: method, Budget: 0.20, Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", method, err)
		}
		par, err := Compress(x, Options{Method: method, Budget: 0.20, Workers: 4})
		if err != nil {
			t.Fatalf("%s workers=4: %v", method, err)
		}
		if sn, pn := serial.StoredNumbers(), par.StoredNumbers(); sn != pn {
			t.Errorf("%s: stored numbers %d (serial) vs %d (workers=4)", method, sn, pn)
		}
		for _, i := range []int{0, 1234, n - 1} {
			for j := 0; j < m; j++ {
				a, err := serial.Cell(i, j)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.Cell(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(a - b); d > 1e-6*(1+math.Abs(a)) {
					t.Errorf("%s cell (%d,%d): %v vs %v", method, i, j, a, b)
				}
			}
		}
	}
}
