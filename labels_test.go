package seqstore

import (
	"math"
	"path/filepath"
	"testing"
)

func labeledToyStore(t *testing.T) (*Store, *Matrix) {
	t.Helper()
	x := Toy()
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := ToyLabels()
	if err := st.SetLabels(rows, cols); err != nil {
		t.Fatal(err)
	}
	return st, x
}

func TestSetLabelsValidation(t *testing.T) {
	st, _ := labeledToyStore(t)
	if err := st.SetLabels([]string{"just one"}, nil); err == nil {
		t.Error("wrong row label count accepted")
	}
	if err := st.SetLabels(nil, []string{"a", "b"}); err == nil {
		t.Error("wrong col label count accepted")
	}
	// nil axes are fine.
	if err := st.SetLabels(nil, nil); err != nil {
		t.Errorf("nil labels rejected: %v", err)
	}
}

func TestCellByLabel(t *testing.T) {
	st, x := labeledToyStore(t)
	// The paper's query: "sales to GHI Inc. on …" — GHI is row 2.
	got, err := st.CellByLabel("GHI Inc.", "Fr")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-x.At(2, 2)) > 1e-9 {
		t.Errorf("CellByLabel = %v, want %v", got, x.At(2, 2))
	}
	if _, err := st.CellByLabel("Nobody Corp.", "Fr"); err == nil {
		t.Error("unknown row label accepted")
	}
	if _, err := st.CellByLabel("GHI Inc.", "Mo"); err == nil {
		t.Error("unknown column label accepted")
	}
}

func TestAggregateByLabel(t *testing.T) {
	st, x := labeledToyStore(t)
	// Total weekday volume of the business customers (paper's example
	// aggregate query phrased with labels).
	got, err := st.AggregateByLabel(Sum,
		[]string{"ABC Inc.", "DEF Ltd.", "GHI Inc.", "KLM Co."},
		[]string{"We", "Th", "Fr"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := AggregateExact(x, Sum, Range(0, 4), Range(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("AggregateByLabel = %v, want %v", got, want)
	}
	if _, err := st.AggregateByLabel(Sum, []string{"nope"}, []string{"We"}); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestLabelsPersist(t *testing.T) {
	st, x := labeledToyStore(t)
	path := filepath.Join(t.TempDir(), "labeled.sqz")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := got.RowLabels()
	if len(rows) != 7 || rows[3] != "KLM Co." {
		t.Fatalf("row labels lost: %v", rows)
	}
	v, err := got.CellByLabel("KLM Co.", "We")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-x.At(3, 0)) > 1e-9 {
		t.Errorf("reopened CellByLabel = %v", v)
	}
	// Mutating returned labels must not affect the store.
	rows[0] = "hacked"
	if got.RowLabels()[0] == "hacked" {
		t.Error("RowLabels must return a copy")
	}
}

func TestUnlabeledStoreLabelQueries(t *testing.T) {
	x := Toy()
	st, err := Compress(x, Options{Method: SVD, Budget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if st.RowLabels() != nil || st.ColLabels() != nil {
		t.Error("unlabeled store reports labels")
	}
	if _, err := st.CellByLabel("a", "b"); err == nil {
		t.Error("label query on unlabeled store accepted")
	}
	// Round trip keeps it unlabeled.
	path := filepath.Join(t.TempDir(), "plain.sqz")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowLabels() != nil {
		t.Error("labels appeared from nowhere")
	}
}
