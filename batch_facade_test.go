package seqstore

import (
	"context"
	"testing"
)

// TestAggregateBatchFacade: the batch facade returns, per query, exactly
// what the single-query path returns with the same options — including
// per-query errors for invalid selections.
func TestAggregateBatchFacade(t *testing.T) {
	x := GeneratePhone(96)
	st, err := Compress(x, Options{Budget: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	n, m := x.Dims()
	queries := []BatchQuery{
		{Agg: Sum, Rows: Range(0, n/2), Cols: Range(0, m)},
		{Agg: Min, Rows: Range(n/4, 3*n/4), Cols: Range(0, m/2)},
		{Agg: StdDev, Rows: Range(0, n), Cols: Range(0, m)},
		{Agg: Max, Rows: []int{n + 10}, Cols: Range(0, m)}, // out of range
		{Agg: Avg, Rows: Range(0, n), Cols: Range(2, 5)},
	}
	results, err := st.AggregateBatch(context.Background(), queries, AggOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for qi, q := range queries {
		want, werr := st.AggregateOpts(q.Agg, q.Rows, q.Cols, AggOptions{Workers: 1})
		if werr != nil {
			if results[qi].Err == nil {
				t.Errorf("query %d: single-path error %v but batch succeeded", qi, werr)
			}
			continue
		}
		if results[qi].Err != nil {
			t.Errorf("query %d: batch error %v", qi, results[qi].Err)
			continue
		}
		if results[qi].Value != want {
			t.Errorf("query %d (%s): batch %v != single %v", qi, q.Agg, results[qi].Value, want)
		}
	}
	if results[3].Err == nil {
		t.Error("out-of-range query did not report an error")
	}

	// An unknown aggregate fails the whole call (it is a programming error,
	// not a data-dependent one).
	if _, err := st.AggregateBatch(context.Background(),
		[]BatchQuery{{Agg: "median", Rows: Range(0, n), Cols: Range(0, m)}}, AggOptions{}); err == nil {
		t.Error("unknown aggregate did not fail the call")
	}

	// A fired context aborts the batch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.AggregateBatch(ctx, queries[:2], AggOptions{}); err == nil {
		t.Error("cancelled context did not abort the batch")
	}
}
