// Package seqstore compresses large datasets of time sequences into a
// format that still supports ad hoc queries, implementing Korn, Jagadish &
// Faloutsos, "Efficiently Supporting Ad Hoc Queries in Large Datasets of
// Time Sequences" (SIGMOD 1997).
//
// A dataset of N sequences of length M is an N×M matrix. seqstore
// compresses it with one of four methods — the paper's SVDD ("SVD with
// deltas", the recommended method), plain truncated SVD, per-row DCT, or
// hierarchical-clustering vector quantization — into a Store that
// reconstructs any single cell in O(k) time with one row access,
// independent of N and M, and answers aggregate queries over arbitrary
// row/column selections.
//
// Quick start:
//
//	x := seqstore.GeneratePhone(2000) // or load your own matrix
//	st, err := seqstore.Compress(x, seqstore.Options{
//		Method: seqstore.SVDD,
//		Budget: 0.10, // compressed size ≤ 10% of the original
//	})
//	v, err := st.Cell(42, 180)                   // one customer, one day
//	avg, err := st.Aggregate(seqstore.Avg, rows, cols) // decision support
package seqstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"seqstore/internal/core"
	"seqstore/internal/dct"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
	"seqstore/internal/robust"
	"seqstore/internal/seqerr"
	"seqstore/internal/store"
	"seqstore/internal/svd"
	"seqstore/internal/vq"
	"seqstore/internal/wavelet"
)

// Method selects a compression algorithm.
type Method string

// Available methods.
const (
	// SVDD is the paper's proposed method: truncated SVD plus explicit
	// deltas for the worst-reconstructed cells, bounding worst-case error.
	SVDD Method = "svdd"
	// SVD is plain truncated singular value decomposition.
	SVD Method = "svd"
	// DCT keeps the k lowest-frequency cosine coefficients of each row.
	DCT Method = "dct"
	// Cluster is vector quantization by hierarchical clustering; it holds
	// the whole matrix in memory and is quadratic in N.
	Cluster Method = "cluster"
	// KMeans is vector quantization by k-means (the faster, approximate
	// clustering the paper mentions in §2.2). The resulting store has the
	// same shape as Cluster's.
	KMeans Method = "kmeans"
	// Wavelet keeps the k largest-magnitude Haar coefficients of each row
	// (the other spectral method of §2.3); cells reconstruct in O(log M).
	Wavelet Method = "wavelet"
)

// Compressor names for Options.Compressor (SVD/SVDD methods only).
const (
	// CompressorGram is the paper's pass 1: accumulate the M×M similarity
	// matrix C = XᵀX in memory and eigendecompose it. Exact, but its working
	// set grows as M² — fine for daily data (M a few hundred), impractical
	// when sequences are tens of thousands of points long.
	CompressorGram = svd.CompressorGram
	// CompressorRandomized recovers the factors from an M×(k+p) random
	// sketch accumulated in one streaming pass, never building C. Working
	// memory is O(M·(k+p)); accuracy is within a fraction of a percent of
	// the Gram path on decaying spectra and tunable via Options.PowerIters.
	CompressorRandomized = svd.CompressorRandomized
)

// Options configures Compress.
type Options struct {
	// Method selects the algorithm; default SVDD.
	Method Method
	// Budget is the target compressed size as a fraction of the raw
	// matrix, e.g. 0.10 for 10:1 compression. Required unless K is set.
	Budget float64
	// K, when > 0, directly fixes the number of components (SVD/DCT), the
	// number of clusters (Cluster), or forces SVDD's cutoff, overriding
	// the Budget-derived value.
	K int
	// DisableBloom turns off the SVDD Bloom filter in front of the delta
	// hash table.
	DisableBloom bool
	// CandidateKs restricts SVDD's k_opt search (advanced; see DESIGN.md).
	CandidateKs []int
	// FlagZeroRows enables the §6.2 optimization for SVDD: all-zero
	// sequences are flagged so their cells reconstruct with no U access.
	FlagZeroRows bool
	// Robust computes outlier-resistant factors (iterative trimming)
	// before SVD/SVDD compression — the paper's future-work direction (b).
	// Requires holding the matrix in memory.
	Robust bool
	// HalfPrecision stores numbers as float32 when the store is saved
	// (the paper's b parameter set to 4 bytes instead of 8), halving the
	// on-disk size at a ~1e-7 relative rounding cost. SVD/SVDD only.
	HalfPrecision bool
	// Workers shards the compression passes (SVD/SVDD) across this many
	// concurrent workers: 0 means runtime.NumCPU(), 1 forces the serial
	// algorithm. The compressed store is the same for every worker count
	// up to floating-point reduction order (U is byte-identical; see
	// DESIGN.md "Parallel compression pipeline"). Other methods ignore it.
	Workers int
	// Compressor selects the factor algorithm for SVD/SVDD:
	// CompressorGram (default, also "") or CompressorRandomized. The
	// randomized compressor never materializes the M×M similarity matrix,
	// making very long sequences compressible; it is incompatible with
	// Robust (which is inherently in-memory).
	Compressor string
	// PowerIters tunes the randomized compressor's accuracy/pass tradeoff;
	// each power iteration costs one extra streaming pass. 0 picks the
	// method default (1 for SVD — two passes total, like the Gram path;
	// 0 for SVDD, whose fused pipeline then stays at two passes), negative
	// requests zero iterations explicitly. Ignored for CompressorGram.
	PowerIters int
}

// ErrNoBudget is returned when neither Budget nor K is provided.
var ErrNoBudget = errors.New("seqstore: Options needs Budget or K")

// Matrix is an in-memory N×M dataset of N time sequences of length M.
type Matrix struct {
	m *linalg.Matrix
}

// NewMatrix allocates a zeroed rows×cols dataset.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{m: linalg.NewMatrix(rows, cols)}
}

// FromRows builds a dataset by copying the given rows (all the same length).
func FromRows(rows [][]float64) *Matrix { return &Matrix{m: linalg.FromRows(rows)} }

// Dims returns (rows, cols).
func (x *Matrix) Dims() (rows, cols int) { return x.m.Dims() }

// At returns the value of cell (i, j).
func (x *Matrix) At(i, j int) float64 { return x.m.At(i, j) }

// Set assigns the value of cell (i, j).
func (x *Matrix) Set(i, j int, v float64) { x.m.Set(i, j, v) }

// SetRow copies row into row i.
func (x *Matrix) SetRow(i int, row []float64) {
	copy(x.m.Row(i), row)
}

// Row returns a copy of row i.
func (x *Matrix) Row(i int) []float64 {
	out := make([]float64, x.m.Cols())
	copy(out, x.m.Row(i))
	return out
}

// Head returns a new Matrix containing the first n rows.
func (x *Matrix) Head(n int) *Matrix {
	if n > x.m.Rows() {
		n = x.m.Rows()
	}
	out := linalg.NewMatrix(n, x.m.Cols())
	for i := 0; i < n; i++ {
		copy(out.Row(i), x.m.Row(i))
	}
	return &Matrix{m: out}
}

// SaveMatrix writes the dataset to path in the binary .smx format.
func SaveMatrix(path string, x *Matrix) error { return matio.WriteMatrix(path, x.m) }

// LoadMatrix reads a .smx dataset fully into memory. Failures name the file
// and, for checksum or truncation damage, the page and byte offset (see
// CorruptError).
func LoadMatrix(path string) (*Matrix, error) {
	m, err := matio.ReadMatrix(path)
	if err != nil {
		return nil, seqerr.FillPath(err, path)
	}
	return &Matrix{m: m}, nil
}

// Store is a compressed, randomly accessible representation of a dataset.
//
// A Store is safe for concurrent use: reads (Cell, Row, Aggregate*, Save)
// take a shared lock, and the mutating operations (FoldIn, SetLabels) take
// it exclusively, so a fold-in never races an in-flight query. The online
// ingestion tier (internal/ingest, served by seqserver's /v1/bulk) builds
// on the same primitives with its own write-ahead log and compactor.
type Store struct {
	mu     sync.RWMutex
	s      store.Store
	labels *store.Labels
	// lazily built label → index maps, guarded by mu
	rowIndex, colIndex map[string]int
}

// Compress builds a compressed store from an in-memory dataset.
func Compress(x *Matrix, opts Options) (*Store, error) {
	return CompressContext(context.Background(), x, opts)
}

// CompressContext is Compress with cancellation: the pipeline checks ctx
// between compression stages and returns ctx.Err() once it fires.
func CompressContext(ctx context.Context, x *Matrix, opts Options) (*Store, error) {
	return compress(ctx, matio.NewMem(x.m), x.m, opts)
}

// CompressFile builds a compressed store by streaming a .smx file, never
// holding the full dataset in memory (except for the Cluster method, which
// is inherently in-memory).
func CompressFile(path string, opts Options) (*Store, error) {
	return CompressFileContext(context.Background(), path, opts)
}

// CompressFileContext is CompressFile with cancellation, checked between
// compression stages.
func CompressFileContext(ctx context.Context, path string, opts Options) (*Store, error) {
	f, err := matio.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var full *linalg.Matrix
	if opts.Method == Cluster || opts.Method == KMeans || opts.Robust {
		full, err = matio.ReadMatrix(path)
		if err != nil {
			return nil, seqerr.FillPath(err, path)
		}
	}
	return compress(ctx, f, full, opts)
}

func compress(ctx context.Context, src matio.RowSource, full *linalg.Matrix, opts Options) (*Store, error) {
	if opts.Method == "" {
		opts.Method = SVDD
	}
	if opts.Budget <= 0 && opts.K <= 0 {
		return nil, ErrNoBudget
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, m := src.Dims()
	var (
		s   store.Encoder
		err error
	)
	switch opts.Compressor {
	case "", CompressorGram:
	case CompressorRandomized:
		if opts.Method != SVD && opts.Method != SVDD {
			return nil, fmt.Errorf("seqstore: Compressor applies only to svd/svdd, not %s", opts.Method)
		}
		if opts.Robust {
			return nil, errors.New("seqstore: Robust requires the in-memory Gram path; it cannot combine with the randomized compressor")
		}
	default:
		return nil, fmt.Errorf("seqstore: unknown compressor %q", opts.Compressor)
	}
	// Robust factor computation (future work (b)) needs the full matrix.
	var robustFactors *svd.Factors
	if opts.Robust {
		if opts.Method != SVD && opts.Method != SVDD {
			return nil, fmt.Errorf("seqstore: Robust applies only to svd/svdd, not %s", opts.Method)
		}
		if full == nil {
			return nil, errors.New("seqstore: Robust compression needs the full matrix in memory")
		}
		k := opts.K
		if k <= 0 {
			k = svd.KForBudget(n, m, opts.Budget)
		}
		if k < 1 {
			k = 1
		}
		robustFactors, err = robust.Factors(full, robust.Options{K: k})
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	switch opts.Method {
	case SVDD:
		budget := opts.Budget
		if budget <= 0 {
			// Derive a budget from K: the SVD cost of K components plus
			// 20% slack for deltas.
			budget = 1.2 * float64(svd.StoredNumbers(n, m, opts.K)) / (float64(n) * float64(m))
			if budget > 1 {
				budget = 1
			}
		}
		o := core.Options{
			Budget:       budget,
			ForceK:       0,
			CandidateKs:  opts.CandidateKs,
			FlagZeroRows: opts.FlagZeroRows,
			Workers:      opts.Workers,
			Compressor:   opts.Compressor,
			PowerIters:   opts.PowerIters,
		}
		if opts.K > 0 && opts.Budget > 0 {
			o.ForceK = opts.K
		}
		if opts.DisableBloom {
			o.BloomFP = -1
		}
		if robustFactors != nil {
			s, err = core.CompressWithFactors(src, robustFactors, o)
		} else {
			s, err = core.Compress(src, o)
		}
	case SVD:
		k := opts.K
		if k <= 0 {
			k = svd.KForBudget(n, m, opts.Budget)
		}
		switch {
		case robustFactors != nil:
			s, err = svd.CompressWithFactorsWorkers(src, robustFactors, k, opts.Workers)
		case opts.Compressor == CompressorRandomized:
			s, err = svd.CompressRandWorkers(src, k, svd.RandOptions{
				Rank:       k,
				PowerIters: opts.PowerIters,
				Workers:    opts.Workers,
			})
		default:
			s, err = svd.CompressWorkers(src, k, opts.Workers)
		}
	case DCT:
		k := opts.K
		if k <= 0 {
			k = dct.KForBudget(m, opts.Budget)
		}
		s, err = dct.Compress(src, k)
	case Wavelet:
		t := opts.K
		if t <= 0 {
			t = wavelet.TForBudget(m, opts.Budget)
		}
		s, err = wavelet.Compress(src, t)
	case Cluster, KMeans:
		if full == nil {
			return nil, fmt.Errorf("seqstore: %s method needs the full matrix in memory", opts.Method)
		}
		c := opts.K
		if c <= 0 {
			c = vq.CForBudget(n, m, opts.Budget)
		}
		if c < 1 {
			return nil, fmt.Errorf("seqstore: budget %.4f cannot fit any cluster representative", opts.Budget)
		}
		if opts.Method == KMeans {
			var labels []int32
			labels, err = vq.KMeans(full, c, 100, 1)
			if err != nil {
				return nil, err
			}
			s, err = vq.NewStore(full, labels, c)
		} else {
			s, err = vq.Compress(full, c)
		}
	default:
		return nil, fmt.Errorf("seqstore: unknown method %q", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.HalfPrecision {
		type precisioner interface{ SetPrecision(int) error }
		p, ok := s.(precisioner)
		if !ok {
			return nil, fmt.Errorf("seqstore: HalfPrecision applies only to svd/svdd, not %s", opts.Method)
		}
		if err := p.SetPrecision(4); err != nil {
			return nil, err
		}
	}
	return &Store{s: s}, nil
}

// Open loads a compressed store saved with Save, including any labels.
// Failures name the file; damage in a checksummed (v2) container surfaces
// as ErrCorrupt with the frame and byte offset (see CorruptError), never as
// silently wrong data.
func Open(path string) (*Store, error) {
	return OpenContext(context.Background(), path)
}

// OpenContext is Open with cancellation, checked before the read starts.
func OpenContext(ctx context.Context, path string) (*Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqstore: open: %w", err)
	}
	defer f.Close()
	s, labels, err := store.ReadLabeled(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, seqerr.FillPath(fmt.Errorf("seqstore: open %s: %w", path, err), path)
	}
	return &Store{s: s, labels: labels}, nil
}

// Save writes the store (and any labels) to path in the .sqz container
// format, atomically: the container goes to a temporary file that is
// fsynced and renamed over path only once complete, so a crash mid-save
// leaves either the old file or the new one — never a partial container.
// Saving re-validates any row/column labels against the store's current
// dimensions first, so label drift (e.g. from a fold-in that bypassed the
// facade) is caught at save time rather than surfacing as a corrupt-looking
// container on reopen.
func (st *Store) Save(path string) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	enc, ok := st.s.(store.Encoder)
	if !ok {
		return fmt.Errorf("seqstore: %s store is not serializable", st.s.Method())
	}
	rows, cols := st.s.Dims()
	if err := st.labels.Validate(rows, cols); err != nil {
		return fmt.Errorf("seqstore: save: %w", err)
	}
	return store.SaveLabeled(path, enc, st.labels)
}

// Dims returns the dimensions of the represented dataset.
func (st *Store) Dims() (rows, cols int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.s.Dims()
}

// Method reports which algorithm produced this store.
func (st *Store) Method() Method { return Method(st.s.Method().String()) }

// Cell reconstructs the value of cell (i, j). For SVDD the result is exact
// whenever the cell was stored as an outlier delta.
func (st *Store) Cell(i, j int) (float64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.s.Cell(i, j)
}

// Row reconstructs all of sequence i.
func (st *Store) Row(i int) ([]float64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.s.Row(i, nil)
}

// SpaceRatio returns the compressed size as a fraction of the raw dataset
// (the paper's s).
func (st *Store) SpaceRatio() float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return store.SpaceRatio(st.s)
}

// StoredNumbers returns the compressed size in stored numbers.
func (st *Store) StoredNumbers() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.s.StoredNumbers()
}

// internalStore exposes the wrapped store to sibling files in this package.
func (st *Store) internalStore() store.Store { return st.s }
