package seqstore

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRobustCompression(t *testing.T) {
	x := GeneratePhone(150)
	// Inject giant spikes.
	for _, c := range [][2]int{{3, 10}, {77, 200}, {120, 5}} {
		x.Set(c[0], c[1], 1e6)
	}
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.10, Robust: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpaceRatio() > 0.10+1e-9 {
		t.Errorf("robust store over budget: %.4f", st.SpaceRatio())
	}
	// Spikes must be delta-pinned: the worst error stays far below 1e6.
	rep, err := st.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstAbs > 1e5 {
		t.Errorf("worst error %.4g — spikes unrepaired", rep.WorstAbs)
	}
	// Plain method also accepts Robust.
	if _, err := Compress(x, Options{Method: SVD, Budget: 0.10, Robust: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRobustRejectsOtherMethods(t *testing.T) {
	x := GeneratePhone(50)
	if _, err := Compress(x, Options{Method: DCT, Budget: 0.1, Robust: true}); err == nil {
		t.Error("robust DCT accepted")
	}
}

func TestRobustFromFile(t *testing.T) {
	x := GeneratePhone(60)
	path := filepath.Join(t.TempDir(), "d.smx")
	if err := SaveMatrix(path, x); err != nil {
		t.Fatal(err)
	}
	if _, err := CompressFile(path, Options{Method: SVDD, Budget: 0.1, Robust: true}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagZeroRowsFacade(t *testing.T) {
	x := GeneratePhone(200) // includes natural zero customers
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.10, FlagZeroRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpaceRatio() > 0.10+1e-9 {
		t.Errorf("space over budget with zero flags: %.4f", st.SpaceRatio())
	}
	// Find a zero customer and verify exact zero reconstruction.
	n, m := x.Dims()
	for i := 0; i < n; i++ {
		zero := true
		for j := 0; j < m; j++ {
			if x.At(i, j) != 0 {
				zero = false
				break
			}
		}
		if zero {
			v, err := st.Cell(i, 100)
			if err != nil {
				t.Fatal(err)
			}
			if v != 0 {
				t.Errorf("zero customer %d reconstructs to %v", i, v)
			}
			return
		}
	}
	t.Skip("no zero customer in this dataset slice")
}

func TestHalfPrecisionFacade(t *testing.T) {
	x := GeneratePhone(80)
	st, err := Compress(x, Options{Method: SVDD, Budget: 0.1, HalfPrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compress(x, Options{Method: SVDD, Budget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p4 := filepath.Join(dir, "half.sqz")
	p8 := filepath.Join(dir, "full.sqz")
	if err := st.Save(p4); err != nil {
		t.Fatal(err)
	}
	if err := full.Save(p8); err != nil {
		t.Fatal(err)
	}
	s4, _ := os.Stat(p4)
	s8, _ := os.Stat(p8)
	if s4.Size() >= s8.Size()*3/4 {
		t.Errorf("half-precision file %d not smaller than full %d", s4.Size(), s8.Size())
	}
	got, err := Open(p4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := got.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	repFull, _ := full.Evaluate(x)
	if rep.RMSPE > repFull.RMSPE*1.01 {
		t.Errorf("half-precision RMSPE %.5f vs full %.5f", rep.RMSPE, repFull.RMSPE)
	}
	// DCT does not support it.
	if _, err := Compress(x, Options{Method: DCT, Budget: 0.1, HalfPrecision: true}); err == nil {
		t.Error("half-precision DCT accepted")
	}
}
