// Command experiments regenerates every table and figure of the paper's
// evaluation section. Run with no arguments for the full suite, or name
// specific experiments:
//
//	experiments [flags] [toy fig6 gzip table3 fig8 fig9 fig10 table4 kopt sampling viz cube parallel server query trace randsvd ingest load cluster obstrace]
//
// Flags:
//
//	-n int            customers in the "phone" dataset (default 2000, as in
//	                  the paper's phone2000)
//	-large            run the full paper-scale sweep (N up to 100,000) for
//	                  the scale-up experiments
//	-csv dir          also write raw experiment data as CSV files into dir
//	-workers int      worker goroutines for the compression passes
//	                  (0 = all CPUs, 1 = serial)
//	-parallel-out p   where the "parallel" harness writes its JSON speedup
//	                  record (default results/bench_parallel.json)
//	-server-out p     where the "server" harness writes its JSON throughput/
//	                  latency record (default results/bench_server.json)
//	-query-out p      where the "query" harness writes its JSON engine
//	                  speedup record (default results/bench_query.json)
//	-trace-out p      where the "trace" harness writes its JSON tracing-
//	                  overhead record (default results/bench_trace.json)
//	-randsvd-out p    where the "randsvd" harness writes its JSON sketch-vs-
//	                  Gram record (default results/bench_randsvd.json)
//	-randsvd-synth-n/-randsvd-synth-m
//	                  size of the randsvd synthetic wide matrix (0 = harness
//	                  defaults, 400×5000)
//	-ingest-out p     where the "ingest" harness writes its JSON write-path
//	                  record (default results/bench_ingest.json)
//	-ingest-cold-n/-ingest-batches
//	                  cold-segment size and bulk batches per writer for the
//	                  ingest harness (0 = harness defaults, 500/24)
//	-load-out p       where the "load" harness writes its JSON closed-/open-
//	                  loop throughput record (default results/bench_load.json)
//	-load-requests    requests per client per closed-loop load run
//	                  (0 = harness default, 300)
//	-cluster-out p    where the "cluster" harness writes its JSON
//	                  distributed-tier record (default
//	                  results/bench_cluster.json)
//	-cluster-requests requests per client per cluster run (0 = harness
//	                  default, 300)
//	-obstrace-out p   where the "obstrace" harness writes its JSON
//	                  cross-process tracing-overhead record (default
//	                  results/bench_obstrace.json)
//	-obstrace-iters   requests per timed batch in the obstrace harness
//	                  (0 = harness default, 40)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"seqstore/internal/datacube"
	"seqstore/internal/experiments"
	"seqstore/internal/linalg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	phoneN := fs.Int("n", 2000, "customers in the phone dataset")
	large := fs.Bool("large", false, "paper-scale scale-up sweep (N up to 100,000)")
	csvDir := fs.String("csv", "", "directory to write raw CSV data (optional)")
	workers := fs.Int("workers", 0, "worker goroutines for the compression passes: 0 = all CPUs, 1 = serial")
	parallelOut := fs.String("parallel-out", filepath.Join("results", "bench_parallel.json"),
		"output path for the 'parallel' speedup harness")
	serverOut := fs.String("server-out", filepath.Join("results", "bench_server.json"),
		"output path for the 'server' serving-layer harness")
	queryOut := fs.String("query-out", filepath.Join("results", "bench_query.json"),
		"output path for the 'query' engine harness")
	traceOut := fs.String("trace-out", filepath.Join("results", "bench_trace.json"),
		"output path for the 'trace' instrumentation-overhead harness")
	randsvdOut := fs.String("randsvd-out", filepath.Join("results", "bench_randsvd.json"),
		"output path for the 'randsvd' sketch-compressor harness")
	randsvdSynthN := fs.Int("randsvd-synth-n", 0,
		"rows of the randsvd synthetic wide matrix (0 = harness default)")
	randsvdSynthM := fs.Int("randsvd-synth-m", 0,
		"columns of the randsvd synthetic wide matrix (0 = harness default 5000)")
	ingestOut := fs.String("ingest-out", filepath.Join("results", "bench_ingest.json"),
		"output path for the 'ingest' write-path harness")
	ingestColdN := fs.Int("ingest-cold-n", 0,
		"cold-segment customers for the ingest harness (0 = harness default)")
	ingestBatches := fs.Int("ingest-batches", 0,
		"bulk batches per writer for the ingest harness (0 = harness default)")
	loadOut := fs.String("load-out", filepath.Join("results", "bench_load.json"),
		"output path for the 'load' closed-/open-loop harness")
	loadRequests := fs.Int("load-requests", 0,
		"requests per client per closed-loop load run (0 = harness default)")
	clusterOut := fs.String("cluster-out", filepath.Join("results", "bench_cluster.json"),
		"output path for the 'cluster' distributed-tier harness")
	clusterRequests := fs.Int("cluster-requests", 0,
		"requests per client per cluster run (0 = harness default)")
	obstraceOut := fs.String("obstrace-out", filepath.Join("results", "bench_obstrace.json"),
		"output path for the 'obstrace' cross-process tracing-overhead harness")
	obstraceIters := fs.Int("obstrace-iters", 0,
		"requests per timed batch in the obstrace harness (0 = harness default)")
	obstraceAssert := fs.Bool("obstrace-assert", false,
		"fail unless the obstrace harness lands under its overhead target "+
			"(retried up to 3 runs; contention noise is one-sided)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.DefaultWorkers = *workers
	names := fs.Args()
	if len(names) == 0 {
		names = []string{"toy", "fig6", "gzip", "table3", "fig8", "fig9",
			"fig10", "table4", "kopt", "sampling", "viz", "spectral", "robust",
			"cube", "parallel", "server", "query", "trace", "randsvd", "ingest", "load",
			"cluster", "obstrace"}
	}

	r := &runner{phoneN: *phoneN, large: *large, csvDir: *csvDir,
		parallelOut: *parallelOut, serverOut: *serverOut, queryOut: *queryOut,
		traceOut: *traceOut, randsvdOut: *randsvdOut,
		randsvdSynthN: *randsvdSynthN, randsvdSynthM: *randsvdSynthM,
		ingestOut: *ingestOut, ingestColdN: *ingestColdN, ingestBatches: *ingestBatches,
		loadOut: *loadOut, loadRequests: *loadRequests,
		clusterOut: *clusterOut, clusterRequests: *clusterRequests,
		obstraceOut: *obstraceOut, obstraceIters: *obstraceIters,
		obstraceAssert: *obstraceAssert,
		workers:        *workers}
	for _, name := range names {
		start := time.Now()
		if err := r.runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

type runner struct {
	phoneN          int
	large           bool
	csvDir          string
	parallelOut     string
	serverOut       string
	queryOut        string
	traceOut        string
	randsvdOut      string
	randsvdSynthN   int
	randsvdSynthM   int
	ingestOut       string
	ingestColdN     int
	ingestBatches   int
	loadOut         string
	loadRequests    int
	clusterOut      string
	clusterRequests int
	obstraceOut     string
	obstraceIters   int
	obstraceAssert  bool
	workers         int

	phone  *linalg.Matrix // lazily built
	stocks *linalg.Matrix
}

func (r *runner) phoneData() *linalg.Matrix {
	if r.phone == nil {
		r.phone = experiments.Phone(r.phoneN)
	}
	return r.phone
}

func (r *runner) stocksData() *linalg.Matrix {
	if r.stocks == nil {
		r.stocks = experiments.Stocks()
	}
	return r.stocks
}

func (r *runner) sizes() []int {
	if r.large {
		return experiments.LargeFig10Sizes
	}
	return experiments.DefaultFig10Sizes
}

func (r *runner) csv(name string, write func(f *os.File) error) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (r *runner) runOne(name string) error {
	out := os.Stdout
	phoneName := fmt.Sprintf("phone%d", r.phoneN)
	switch name {
	case "toy":
		_, err := experiments.Toy(out)
		return err

	case "fig6":
		res, err := experiments.Fig6(r.phoneData(), phoneName, nil, out)
		if err != nil {
			return err
		}
		res2, err := experiments.Fig6(r.stocksData(), "stocks", nil, out)
		if err != nil {
			return err
		}
		return r.csv("fig6.csv", func(f *os.File) error {
			fmt.Fprintln(f, "dataset,s,cluster,dct,svd,svdd")
			for _, set := range []*experiments.Fig6Result{res, res2} {
				for _, row := range set.Rows {
					fmt.Fprintf(f, "%s,%g,%g,%g,%g,%g\n", set.Dataset,
						row.S, row.Cluster, row.DCT, row.SVD, row.SVDD)
				}
			}
			return nil
		})

	case "gzip":
		_, err := experiments.GzipRef(map[string]*linalg.Matrix{
			phoneName: r.phoneData(),
			"stocks":  r.stocksData(),
		}, out)
		return err

	case "table3":
		rows, err := experiments.Table3(r.phoneData(), nil, out)
		if err != nil {
			return err
		}
		return r.csv("table3.csv", func(f *os.File) error {
			fmt.Fprintln(f, "s,svd_abs,svdd_abs,svd_norm,svdd_norm")
			for _, row := range rows {
				fmt.Fprintf(f, "%g,%g,%g,%g,%g\n",
					row.S, row.SVDAbs, row.SVDDAbs, row.SVDNorm, row.SVDDNorm)
			}
			return nil
		})

	case "fig8":
		res, err := experiments.Fig8(r.phoneData(), 0.10, out)
		if err != nil {
			return err
		}
		return r.csv("fig8.csv", func(f *os.File) error {
			fmt.Fprintln(f, "rank,abs_error")
			for i, e := range res.Errors {
				fmt.Fprintf(f, "%d,%g\n", i+1, e)
			}
			return nil
		})

	case "fig9":
		rows, err := experiments.Fig9(r.phoneData(), experiments.Fig9Config{Seed: 1}, out)
		if err != nil {
			return err
		}
		return r.csv("fig9.csv", func(f *os.File) error {
			fmt.Fprintln(f, "s,qerr,rmspe")
			for _, row := range rows {
				fmt.Fprintf(f, "%g,%g,%g\n", row.S, row.QErr, row.RMSPE)
			}
			return nil
		})

	case "fig10":
		cells, err := experiments.Fig10(r.sizes(), nil, out)
		if err != nil {
			return err
		}
		return r.csv("fig10.csv", func(f *os.File) error {
			fmt.Fprintln(f, "n,s,rmspe")
			for _, c := range cells {
				fmt.Fprintf(f, "%d,%g,%g\n", c.N, c.S, c.RMSPE)
			}
			return nil
		})

	case "table4":
		rows, err := experiments.Table4(r.sizes(), out)
		if err != nil {
			return err
		}
		return r.csv("table4.csv", func(f *os.File) error {
			fmt.Fprintln(f, "n,svd_norm,svdd_norm")
			for _, row := range rows {
				fmt.Fprintf(f, "%d,%g,%g\n", row.N, row.SVDNorm, row.SVDDNorm)
			}
			return nil
		})

	case "kopt":
		_, err := experiments.KOpt(r.phoneData(), 0.10, out)
		return err

	case "sampling":
		_, err := experiments.SamplingComparison(r.phoneData(), nil, 50, out)
		return err

	case "viz":
		return experiments.Viz(map[string]*linalg.Matrix{
			phoneName: r.phoneData(),
			"stocks":  r.stocksData(),
		}, out)

	case "spectral":
		if _, err := experiments.Spectral(r.phoneData(), phoneName, nil, out); err != nil {
			return err
		}
		_, err := experiments.Spectral(r.stocksData(), "stocks", nil, out)
		return err

	case "robust":
		_, err := experiments.Robust(r.phoneData(), 0.10, nil, out)
		return err

	case "cube":
		_, err := experiments.Cube(datacube.SalesConfig{
			Products: 100, Stores: 16, Weeks: 52, Seed: 1,
		}, 0.10, out)
		return err

	case "parallel":
		res, err := experiments.BenchParallel(experiments.DefaultParallelConfig(), out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.parallelOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.parallelOut)
		return nil

	case "server":
		cfg := experiments.DefaultServerConfig()
		cfg.N = r.phoneN
		res, err := experiments.BenchServer(cfg, out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.serverOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.serverOut)
		return nil

	case "query":
		res, err := experiments.BenchQuery(experiments.DefaultQueryConfig(), out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.queryOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.queryOut)
		return nil

	case "randsvd":
		cfg := experiments.DefaultRandSVDConfig()
		cfg.Workers = r.workers
		if r.randsvdSynthN > 0 {
			cfg.SynthN = r.randsvdSynthN
		}
		if r.randsvdSynthM > 0 {
			cfg.SynthM = r.randsvdSynthM
		}
		res, err := experiments.BenchRandSVD(cfg, out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.randsvdOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.randsvdOut)
		return nil

	case "trace":
		res, err := experiments.BenchTrace(experiments.DefaultTraceConfig(), out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.traceOut)
		return nil

	case "ingest":
		cfg := experiments.DefaultIngestConfig()
		if r.ingestColdN > 0 {
			cfg.ColdN = r.ingestColdN
		}
		if r.ingestBatches > 0 {
			cfg.Batches = r.ingestBatches
		}
		res, err := experiments.BenchIngest(cfg, out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.ingestOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.ingestOut)
		return nil

	case "cluster":
		cfg := experiments.DefaultClusterConfig()
		cfg.N = r.phoneN
		cfg.Workers = r.workers
		if r.clusterRequests > 0 {
			cfg.Requests = r.clusterRequests
		}
		res, err := experiments.BenchCluster(cfg, out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.clusterOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.clusterOut)
		return nil

	case "obstrace":
		cfg := experiments.DefaultObsTraceConfig()
		cfg.N = r.phoneN
		if r.obstraceIters > 0 {
			cfg.Iters = r.obstraceIters
		}
		// Under -obstrace-assert, rerun up to 3 times and keep the best run:
		// contention noise only ever inflates the measured overhead, so the
		// minimum across runs is the honest estimate of the plane's cost.
		attempts := 1
		if r.obstraceAssert {
			attempts = 3
		}
		var best *experiments.ObsTraceResult
		for a := 0; a < attempts; a++ {
			res, err := experiments.BenchObsTrace(cfg, out)
			if err != nil {
				return err
			}
			if !res.ExplainEstimateExact || res.ExplainExtraDisk != 0 {
				return fmt.Errorf("obstrace: explain invariants violated: extra disk %d, estimate exact %v",
					res.ExplainExtraDisk, res.ExplainEstimateExact)
			}
			if best == nil || res.MaxOverheadPct < best.MaxOverheadPct {
				best = res
			}
			if best.MaxOverheadPct < best.TargetPct {
				break
			}
		}
		if r.obstraceAssert && best.MaxOverheadPct >= best.TargetPct {
			return fmt.Errorf("obstrace: tracing overhead %.2f%% exceeds the %.0f%% target in %d runs",
				best.MaxOverheadPct, best.TargetPct, attempts)
		}
		if err := best.WriteJSON(r.obstraceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.obstraceOut)
		return nil

	case "load":
		cfg := experiments.DefaultLoadConfig()
		cfg.N = r.phoneN
		if r.loadRequests > 0 {
			cfg.Requests = r.loadRequests
		}
		res, err := experiments.BenchLoad(cfg, out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(r.loadOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.loadOut)
		return nil

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
