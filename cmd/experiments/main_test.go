package main

import (
	"path/filepath"
	"testing"
)

func TestRunToyAndUnknown(t *testing.T) {
	if err := run([]string{"-n", "150", "toy"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"nosuchexperiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-n", "150", "-csv", dir, "fig8"}); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "fig8.csv")); err != nil {
		t.Fatal(err)
	}
}
