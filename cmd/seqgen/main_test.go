package main

import (
	"path/filepath"
	"testing"

	"seqstore/internal/matio"
)

func TestRunPhone(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.smx")
	if err := run([]string{"-kind", "phone", "-n", "25", "-m", "40", "-out", out}); err != nil {
		t.Fatal(err)
	}
	m, err := matio.ReadMatrix(out)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := m.Dims(); r != 25 || c != 40 {
		t.Errorf("dims = (%d,%d)", r, c)
	}
}

func TestRunStocksAndToy(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-kind", "stocks", "-out", filepath.Join(dir, "s.smx")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "toy", "-out", filepath.Join(dir, "t.smx")}); err != nil {
		t.Fatal(err)
	}
	m, err := matio.ReadMatrix(filepath.Join(dir, "t.smx"))
	if err != nil {
		t.Fatal(err)
	}
	if r, c := m.Dims(); r != 7 || c != 5 {
		t.Errorf("toy dims = (%d,%d)", r, c)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-kind", "phone"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-kind", "nope", "-out", filepath.Join(t.TempDir(), "x.smx")}); err == nil {
		t.Error("unknown kind accepted")
	}
}
