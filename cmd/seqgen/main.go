// Command seqgen generates synthetic datasets in the .smx binary matrix
// format used by the other tools.
//
//	seqgen -kind phone -n 2000 -out phone2000.smx
//	seqgen -kind stocks -out stocks.smx
//	seqgen -kind toy -out toy.smx
package main

import (
	"flag"
	"fmt"
	"os"

	"seqstore/internal/dataset"
	"seqstore/internal/linalg"
	"seqstore/internal/matio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seqgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("seqgen", flag.ContinueOnError)
	kind := fs.String("kind", "phone", "dataset kind: phone, stocks, toy")
	n := fs.Int("n", 2000, "rows (phone only)")
	m := fs.Int("m", 366, "columns (phone only)")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("out", "", "output .smx path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var x *linalg.Matrix
	switch *kind {
	case "phone":
		cfg := dataset.DefaultPhoneConfig(*n)
		cfg.M = *m
		cfg.Seed = *seed
		// Stream straight to disk; the matrix is never materialized.
		src := dataset.NewPhoneSource(cfg)
		w, err := matio.Create(*out, cfg.N, cfg.M)
		if err != nil {
			return err
		}
		if err := src.ScanRows(func(i int, row []float64) error {
			return w.WriteRow(row)
		}); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: phone dataset, %d×%d\n", *out, cfg.N, cfg.M)
		return nil
	case "stocks":
		cfg := dataset.DefaultStocksConfig()
		cfg.Seed = *seed
		x = dataset.GenerateStocks(cfg)
	case "toy":
		x = dataset.Toy()
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err := matio.WriteMatrix(*out, x); err != nil {
		return err
	}
	r, c := x.Dims()
	fmt.Printf("wrote %s: %s dataset, %d×%d\n", *out, *kind, r, c)
	return nil
}
