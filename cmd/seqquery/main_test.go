package main

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"seqstore"
)

func TestParseSelection(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		want []int
	}{
		{"", 3, []int{0, 1, 2}},
		{"5", 10, []int{5}},
		{"1,4,2", 10, []int{1, 4, 2}},
		{"0:3", 10, []int{0, 1, 2}},
		{"7,0:2", 10, []int{7, 0, 1}},
		{" 3 , 5 ", 10, []int{3, 5}},
	}
	for _, c := range cases {
		got, err := parseSelection(c.spec, c.n)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseSelectionErrors(t *testing.T) {
	for _, spec := range []string{"x", "1:y", "z:3", "5:2", "1,,2"} {
		if _, err := parseSelection(spec, 10); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "toy.sqz")
	x := seqstore.Toy()
	st, err := seqstore.Compress(x, seqstore.Options{Method: seqstore.SVDD, Budget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(storePath); err != nil {
		t.Fatal(err)
	}

	runOut := func(args ...string) (string, error) {
		var buf bytes.Buffer
		err := run(append([]string{"-store", storePath}, args...), &buf)
		return strings.TrimSpace(buf.String()), err
	}

	// Cell: KLM Co. on Wednesday = 5.
	out, err := runOut("cell", "3", "0")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := strconv.ParseFloat(out, 64); math.Abs(v-5) > 1e-6 {
		t.Errorf("cell = %q, want 5", out)
	}

	// Row: 5 values.
	out, err = runOut("row", "0")
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(out)) != 5 {
		t.Errorf("row output = %q", out)
	}

	// Aggregate: business weekday total = 27.
	var buf bytes.Buffer
	if err := run([]string{"-store", storePath, "-rows", "0:4", "-cols", "0:3", "agg", "sum"}, &buf); err != nil {
		t.Fatal(err)
	}
	if v, _ := strconv.ParseFloat(strings.TrimSpace(buf.String()), 64); math.Abs(v-27) > 1e-6 {
		t.Errorf("agg = %q, want 27", buf.String())
	}

	// Errors.
	if _, err := runOut("cell", "1"); err == nil {
		t.Error("short cell args accepted")
	}
	if _, err := runOut("cell", "x", "y"); err == nil {
		t.Error("non-numeric cell args accepted")
	}
	if _, err := runOut("row", "99"); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := runOut("frobnicate"); err == nil {
		t.Error("unknown query accepted")
	}
	if err := run([]string{"cell", "0", "0"}, &buf); err == nil {
		t.Error("missing -store accepted")
	}
	if err := run([]string{"-store", storePath}, &buf); err == nil {
		t.Error("missing query accepted")
	}
}
