// Command seqquery runs ad hoc queries against a compressed .sqz store —
// the paper's two query classes:
//
//	seqquery -store phone.sqz cell 42 180
//	seqquery -store phone.sqz -rows 0:1000 -cols 180:187 agg avg
//	seqquery -store phone.sqz -rows 3,17,256 agg sum
//	seqquery -store phone.sqz row 42
//
// Row/column selections accept comma-separated indices and lo:hi ranges
// (hi exclusive), mixed freely; an omitted selection means "all". All flags
// must precede the query words. -workers N shards aggregate evaluation
// across N goroutines (0 = one per CPU; default 1, serial).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"seqstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seqquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("seqquery", flag.ContinueOnError)
	storePath := fs.String("store", "", "compressed .sqz store (required)")
	rowSpec := fs.String("rows", "", "row selection for agg, e.g. 0:1000 or 3,17,256")
	colSpec := fs.String("cols", "", "column selection for agg")
	workers := fs.Int("workers", 1, "agg evaluation goroutines (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("-store is required")
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a query: cell I J | row I | agg FUNC")
	}

	st, err := seqstore.Open(*storePath)
	if err != nil {
		return err
	}
	n, m := st.Dims()

	switch rest[0] {
	case "cell":
		if len(rest) != 3 {
			return fmt.Errorf("usage: cell I J")
		}
		i, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad row %q: %w", rest[1], err)
		}
		j, err := strconv.Atoi(rest[2])
		if err != nil {
			return fmt.Errorf("bad column %q: %w", rest[2], err)
		}
		v, err := st.Cell(i, j)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%g\n", v)
		return nil

	case "row":
		if len(rest) != 2 {
			return fmt.Errorf("usage: row I")
		}
		i, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad row %q: %w", rest[1], err)
		}
		row, err := st.Row(i)
		if err != nil {
			return err
		}
		for j, v := range row {
			if j > 0 {
				fmt.Fprint(out, " ")
			}
			fmt.Fprintf(out, "%g", v)
		}
		fmt.Fprintln(out)
		return nil

	case "agg":
		if len(rest) != 2 {
			return fmt.Errorf("usage: agg sum|avg|count|min|max|stddev -rows … -cols …")
		}
		rows, err := parseSelection(*rowSpec, n)
		if err != nil {
			return fmt.Errorf("-rows: %w", err)
		}
		cols, err := parseSelection(*colSpec, m)
		if err != nil {
			return fmt.Errorf("-cols: %w", err)
		}
		v, err := st.AggregateOpts(seqstore.Aggregate(rest[1]), rows, cols,
			seqstore.AggOptions{Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%g\n", v)
		return nil

	default:
		return fmt.Errorf("unknown query %q", rest[0])
	}
}

// parseSelection parses "3,17,0:10" into indices; empty means all of [0,n).
func parseSelection(spec string, n int) ([]int, error) {
	return seqstore.ParseIndexSpec(spec, n)
}
