// Command seqserver serves ad hoc queries over a compressed .sqz store via
// HTTP/JSON — the decision-support front end the paper's warehouse setting
// implies: analysts issue cell and aggregate queries against the
// compressed data without ever reconstituting the original matrix.
//
//	seqserver -store phone2000.sqz -addr :8080 -cache-rows 4096
//
// Endpoints (all GET; non-GET verbs get 405 with an Allow header). The
// canonical paths live under /v1/; the bare legacy paths still answer but
// carry Deprecation and Link headers pointing at their /v1/ successor:
//
//	/v1/info                      store metadata
//	/v1/cell?i=42&j=180           one reconstructed cell
//	/v1/cell?row=GHI+Inc.&col=We  the same, by axis labels (when stored)
//	/v1/cells?at=42:180,42:181    batch cell lookups
//	/v1/row?i=42                  one reconstructed sequence
//	/v1/rows?i=0:8,17             batch row reconstruction
//	/v1/agg?f=avg&rows=0:1000&cols=180:187
//	                              aggregate over a row/column selection;
//	                              rows/cols accept "3,17,0:10" specs and
//	                              default to "all"
//	/v1/metrics                   per-endpoint latency histograms, row-cache
//	                              hit rate, disk-access counters, corruption
//	                              count
//	/v1/healthz                   liveness probe
//
// Errors map onto the store's typed taxonomy: bad input and out-of-range
// indices are 400s, detected on-disk corruption is a 503 (the process
// keeps serving what it still can), a client gone mid-query logs as 499.
//
// The serving layer (timeouts, graceful shutdown, row cache, telemetry)
// lives in internal/server; this command only parses flags and wires up
// signal handling. SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seqstore/internal/server"
	"seqstore/internal/store"
)

func main() {
	fs := flag.NewFlagSet("seqserver", flag.ExitOnError)
	storePath := fs.String("store", "", "compressed .sqz store (required)")
	addr := fs.String("addr", ":8080", "listen address")
	cacheRows := fs.Int("cache-rows", 4096, "LRU row-cache capacity in rows (0 disables)")
	queryWorkers := fs.Int("query-workers", 1,
		"goroutines per /agg evaluation (0 = one per CPU)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "request read timeout")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "response write timeout")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"max time to drain in-flight requests on SIGINT/SIGTERM")
	fs.Parse(os.Args[1:])
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "seqserver: -store is required")
		os.Exit(1)
	}
	st, labels, err := server.Open(*storePath)
	if err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	srv := server.New(st, labels, server.Config{
		Addr:            *addr,
		CacheRows:       *cacheRows,
		QueryWorkers:    *queryWorkers,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		IdleTimeout:     *idleTimeout,
		ShutdownTimeout: *shutdownTimeout,
	})
	l, err := srv.Listen()
	if err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	rows, cols := st.Dims()
	log.Printf("serving %s store (%d×%d, %.2f%% of original) on %s (cache %d rows)",
		st.Method(), rows, cols, 100*store.SpaceRatio(st), l.Addr(), *cacheRows)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, l); err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	log.Printf("seqserver: drained in-flight requests, exiting")
}
