// Command seqserver serves ad hoc queries over a compressed .sqz store via
// HTTP/JSON — the decision-support front end the paper's warehouse setting
// implies: analysts issue cell and aggregate queries against the
// compressed data without ever reconstituting the original matrix.
//
//	seqserver -store phone2000.sqz -addr :8080 -cache-rows 4096
//
// Endpoints (all GET; non-GET verbs get 405 with an Allow header). The
// canonical paths live under /v1/; the bare legacy paths still answer but
// carry Deprecation and Link headers pointing at their /v1/ successor:
//
//	/v1/info                      store metadata
//	/v1/cell?i=42&j=180           one reconstructed cell
//	/v1/cell?row=GHI+Inc.&col=We  the same, by axis labels (when stored)
//	/v1/cells?at=42:180,42:181    batch cell lookups
//	/v1/row?i=42                  one reconstructed sequence
//	/v1/rows?i=0:8,17             batch row reconstruction
//	/v1/agg?f=avg&rows=0:1000&cols=180:187
//	                              aggregate over a row/column selection;
//	                              rows/cols accept "3,17,0:10" specs and
//	                              default to "all"; plans (V panel + row-run
//	                              schedule) are memoized in a plan cache
//	                              sized by -plan-cache
//	/v1/aggregate                 POST form of /v1/agg; "explain": true adds
//	                              the chosen plan, plan-cache outcome,
//	                              row-run schedule and cost estimates next
//	                              to the executed ledger (no extra disk
//	                              accesses; exact on a cold store)
//	/v1/aggregate/batch           POST: N aggregates in one request sharing
//	                              one pass over the selections' U-row union;
//	                              body {"queries":[{"f":"sum","rows":"0:64",
//	                              "cols":"0:24"},...]}, per-item status in
//	                              the response like /v1/bulk; "explain"
//	                              per query or batch-wide
//	/v1/metrics                   per-endpoint latency histograms, row-cache
//	                              hit rate, disk-access counters, corruption
//	                              count; ?format=prom renders the same
//	                              snapshot as Prometheus text
//	/v1/debug/traces              ring of recently completed request traces
//	                              with per-request cost ledgers
//	/v1/healthz                   liveness probe
//
// With -writable the store becomes a live ingestion tier and one write
// endpoint opens up (POST; everything else stays GET):
//
//	/v1/bulk                      NDJSON bulk append, one document per line:
//	                              {"label":"cust-9911","values":[...]} with
//	                              optional {"create":{}} action lines. The
//	                              whole request is one WAL fsync; a 201 item
//	                              is durable across any crash. Appended rows
//	                              serve immediately (exact, zero disk
//	                              accesses) and are folded into the
//	                              compressed segment by a background
//	                              compactor, which atomically rewrites the
//	                              -store file and checkpoints the WAL.
//
// Every response carries X-Request-Id (echoing a well-formed client value,
// or a fresh one) and X-Cost-Disk-Accesses, the number of U-row fetches the
// request cost under the paper's block model.
//
// Errors map onto the store's typed taxonomy: bad input and out-of-range
// indices are 400s, detected on-disk corruption is a 503 (the process
// keeps serving what it still can), a client gone mid-query logs as 499.
//
// The serving layer (timeouts, graceful shutdown, row cache, telemetry)
// lives in internal/server; this command only parses flags and wires up
// logging, signal handling and the optional pprof listener.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqstore/internal/ingest"
	"seqstore/internal/server"
	"seqstore/internal/store"
)

// newLogger builds the process logger from the -log-format/-log-level
// flags. JSON goes to stdout (one object per line, machine-shippable);
// text is the human-readable development format.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json", "":
		return slog.New(slog.NewJSONHandler(os.Stdout, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stdout, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want json|text)", format)
	}
}

// servePprof starts net/http/pprof on its own listener, registered on an
// explicit mux so the profiling surface never leaks onto the query API's
// address. Debug-only: bind it to localhost.
func servePprof(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("pprof listener failed", "addr", addr, "err", err)
		}
	}()
}

func main() {
	fs := flag.NewFlagSet("seqserver", flag.ExitOnError)
	storePath := fs.String("store", "", "compressed .sqz store (required)")
	addr := fs.String("addr", ":8080", "listen address")
	cacheRows := fs.Int("cache-rows", 4096, "LRU row-cache capacity in rows (0 disables)")
	planCache := fs.Int("plan-cache", 0,
		"query-plan cache capacity in plans (0 = default 256, negative disables)")
	queryWorkers := fs.Int("query-workers", 1,
		"goroutines per /agg evaluation (0 = one per CPU)")
	logFormat := fs.String("log-format", "json", "structured log format: json or text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	slowQuery := fs.Duration("slow-query", 0,
		"log requests slower than this at Warn with their cost ledger (0 disables)")
	traceBuffer := fs.Int("trace-buffer", 0,
		"request traces kept for /v1/debug/traces (0 = default)")
	sloObjective := fs.Duration("slo-objective", 0,
		"per-endpoint latency objective reported by /v1/metrics and /v1/healthz (0 disables)")
	sloTarget := fs.Float64("slo-target", 0.99,
		"fraction of requests that must meet -slo-objective")
	debugAddr := fs.String("debug-addr", "",
		"serve net/http/pprof on this separate address (empty disables)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "request read timeout")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "response write timeout")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"max time to drain in-flight requests on SIGINT/SIGTERM")
	writable := fs.Bool("writable", false,
		"serve the store as a live ingestion tier: enables POST /v1/bulk, a WAL-backed hot segment and background compaction into -store")
	walPath := fs.String("wal", "",
		"write-ahead log path for -writable (default: <store>.wal)")
	compactAfter := fs.Int("compact-after", 0,
		"hot rows that wake the background compactor (0 = default 256)")
	recompressGrowth := fs.Float64("recompress-growth", 0,
		"cold-segment growth factor that triggers full recompression (0 = default 1.5, negative disables)")
	fs.Parse(os.Args[1:])
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "seqserver: -store is required")
		os.Exit(1)
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqserver: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	st, labels, err := server.Open(*storePath)
	if err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	if *writable {
		wal := *walPath
		if wal == "" {
			wal = *storePath + ".wal"
		}
		// Compactions persist the folded cold segment back into the -store
		// file (atomic rename), so restarts replay only the still-hot tail.
		ti, err := ingest.Open(st, labels, wal, ingest.Options{
			CompactAfter:     *compactAfter,
			RecompressGrowth: *recompressGrowth,
			PersistPath:      *storePath,
			Logger:           logger,
		})
		if err != nil {
			log.Fatalf("seqserver: %v", err)
		}
		defer ti.Close()
		st = ti
		logger.Info("ingestion tier enabled",
			"wal", wal, "hot_rows", ti.HotRows(), "compact_after", *compactAfter)
	}
	srv := server.New(st, labels, server.Config{
		Addr:            *addr,
		CacheRows:       *cacheRows,
		PlanCacheSize:   *planCache,
		QueryWorkers:    *queryWorkers,
		Logger:          logger,
		SlowQuery:       *slowQuery,
		TraceBuffer:     *traceBuffer,
		SLOObjective:    *sloObjective,
		SLOTarget:       *sloTarget,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		IdleTimeout:     *idleTimeout,
		ShutdownTimeout: *shutdownTimeout,
	})
	l, err := srv.Listen()
	if err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	if *debugAddr != "" {
		servePprof(*debugAddr, logger)
	}
	rows, cols := st.Dims()
	logger.Info("serving",
		"method", st.Method().String(),
		"rows", rows, "cols", cols,
		"space_ratio", store.SpaceRatio(st),
		"addr", l.Addr().String(),
		"cache_rows", *cacheRows)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, l); err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	logger.Info("drained in-flight requests, exiting")
}
