// Command seqserver serves ad hoc queries over a compressed .sqz store via
// HTTP/JSON — the decision-support front end the paper's warehouse setting
// implies: analysts issue cell and aggregate queries against the
// compressed data without ever reconstituting the original matrix.
//
//	seqserver -store phone2000.sqz -addr :8080
//
// Endpoints (all GET):
//
//	/info                         store metadata
//	/cell?i=42&j=180              one reconstructed cell
//	/cell?row=GHI+Inc.&col=We     the same, by axis labels (when stored)
//	/row?i=42                     one reconstructed sequence
//	/agg?f=avg&rows=0:1000&cols=180:187
//	                              aggregate over a row/column selection;
//	                              rows/cols accept "3,17,0:10" specs and
//	                              default to "all"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"

	"seqstore"
)

func main() {
	fs := flag.NewFlagSet("seqserver", flag.ExitOnError)
	storePath := fs.String("store", "", "compressed .sqz store (required)")
	addr := fs.String("addr", ":8080", "listen address")
	fs.Parse(os.Args[1:])
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "seqserver: -store is required")
		os.Exit(1)
	}
	st, err := seqstore.Open(*storePath)
	if err != nil {
		log.Fatalf("seqserver: %v", err)
	}
	rows, cols := st.Dims()
	log.Printf("serving %s store (%d×%d, %.2f%% of original) on %s",
		st.Method(), rows, cols, 100*st.SpaceRatio(), *addr)
	log.Fatal(http.ListenAndServe(*addr, NewHandler(st)))
}

// NewHandler builds the HTTP API around an open store. Exposed for tests.
func NewHandler(st *seqstore.Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		rows, cols := st.Dims()
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"method":        string(st.Method()),
			"rows":          rows,
			"cols":          cols,
			"spaceRatio":    st.SpaceRatio(),
			"storedNumbers": st.StoredNumbers(),
		})
	})
	mux.HandleFunc("/cell", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		// Label-addressed form: /cell?row=GHI+Inc.&col=We
		if rl, cl := q.Get("row"), q.Get("col"); rl != "" || cl != "" {
			v, err := st.CellByLabel(rl, cl)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]interface{}{
				"row": rl, "col": cl, "value": v,
			})
			return
		}
		i, err1 := strconv.Atoi(q.Get("i"))
		j, err2 := strconv.Atoi(q.Get("j"))
		if err1 != nil || err2 != nil {
			writeError(w, http.StatusBadRequest, "cell needs integer i and j (or label row and col) parameters")
			return
		}
		v, err := st.Cell(i, j)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"i": i, "j": j, "value": v})
	})
	mux.HandleFunc("/row", func(w http.ResponseWriter, r *http.Request) {
		i, err := strconv.Atoi(r.URL.Query().Get("i"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "row needs an integer i parameter")
			return
		}
		row, err := st.Row(i)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"i": i, "values": row})
	})
	mux.HandleFunc("/agg", func(w http.ResponseWriter, r *http.Request) {
		n, m := st.Dims()
		q := r.URL.Query()
		f := q.Get("f")
		if f == "" {
			f = "avg"
		}
		rows, err := seqstore.ParseIndexSpec(q.Get("rows"), n)
		if err != nil {
			writeError(w, http.StatusBadRequest, "rows: "+err.Error())
			return
		}
		cols, err := seqstore.ParseIndexSpec(q.Get("cols"), m)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cols: "+err.Error())
			return
		}
		v, err := st.Aggregate(seqstore.Aggregate(f), rows, cols)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"f": f, "rows": len(rows), "cols": len(cols), "value": v,
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		log.Printf("seqserver: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
