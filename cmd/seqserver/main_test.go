package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"seqstore"
)

func newTestServer(t *testing.T) (*httptest.Server, *seqstore.Matrix) {
	t.Helper()
	x := seqstore.GeneratePhone(120)
	st, err := seqstore.Compress(x, seqstore.Options{Method: seqstore.SVDD, Budget: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(st))
	t.Cleanup(srv.Close)
	return srv, x
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s: decode: %v", url, err)
	}
	return body
}

func TestInfoEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	body := getJSON(t, srv.URL+"/info", http.StatusOK)
	if body["method"] != "svdd" {
		t.Errorf("method = %v", body["method"])
	}
	if body["rows"].(float64) != 120 || body["cols"].(float64) != 366 {
		t.Errorf("dims = %v×%v", body["rows"], body["cols"])
	}
	if sr := body["spaceRatio"].(float64); sr <= 0 || sr > 0.12+1e-9 {
		t.Errorf("spaceRatio = %v", sr)
	}
}

func TestCellEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	body := getJSON(t, srv.URL+"/cell?i=5&j=100", http.StatusOK)
	if body["i"].(float64) != 5 || body["j"].(float64) != 100 {
		t.Errorf("echoed coords wrong: %v", body)
	}
	if _, ok := body["value"].(float64); !ok {
		t.Error("no numeric value")
	}
	// Errors.
	getJSON(t, srv.URL+"/cell?i=5", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?i=abc&j=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/cell?i=99999&j=0", http.StatusBadRequest)
}

func TestRowEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	body := getJSON(t, srv.URL+"/row?i=7", http.StatusOK)
	vals := body["values"].([]interface{})
	if len(vals) != 366 {
		t.Errorf("row length %d", len(vals))
	}
	getJSON(t, srv.URL+"/row?i=-1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/row", http.StatusBadRequest)
}

func TestAggEndpoint(t *testing.T) {
	srv, x := newTestServer(t)
	body := getJSON(t, srv.URL+"/agg?f=avg&rows=0:50&cols=0:30", http.StatusOK)
	got := body["value"].(float64)
	want, err := seqstore.AggregateExact(x, seqstore.Avg, seqstore.Range(0, 50), seqstore.Range(0, 30))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 0.10 {
		t.Errorf("agg value %.4f vs exact %.4f (%.1f%% off)", got, want, 100*rel)
	}
	if body["rows"].(float64) != 50 || body["cols"].(float64) != 30 {
		t.Errorf("selection sizes echoed wrong: %v", body)
	}
	// Default f and default selections (all rows/cols).
	all := getJSON(t, srv.URL+"/agg", http.StatusOK)
	if all["f"] != "avg" {
		t.Errorf("default f = %v", all["f"])
	}
	if all["rows"].(float64) != 120 || all["cols"].(float64) != 366 {
		t.Errorf("default selection = %v×%v", all["rows"], all["cols"])
	}
	// Errors.
	getJSON(t, srv.URL+"/agg?f=median", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?rows=9:1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/agg?cols=zzz", http.StatusBadRequest)
}

func TestCountAggExact(t *testing.T) {
	srv, _ := newTestServer(t)
	body := getJSON(t, fmt.Sprintf("%s/agg?f=count&rows=0:10&cols=0:10", srv.URL), http.StatusOK)
	if body["value"].(float64) != 100 {
		t.Errorf("count = %v", body["value"])
	}
}

func TestCellByLabelEndpoint(t *testing.T) {
	x := seqstore.Toy()
	st, err := seqstore.Compress(x, seqstore.Options{Method: seqstore.SVDD, Budget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := seqstore.ToyLabels()
	if err := st.SetLabels(rows, cols); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()
	body := getJSON(t, srv.URL+"/cell?row=KLM+Co.&col=We", http.StatusOK)
	if v := body["value"].(float64); math.Abs(v-5) > 1e-6 {
		t.Errorf("KLM/We = %v, want 5", v)
	}
	getJSON(t, srv.URL+"/cell?row=Nobody&col=We", http.StatusBadRequest)
}
