package main

import (
	"os"
	"path/filepath"
	"testing"

	"seqstore"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.smx")
	if err := seqstore.SaveMatrix(path, seqstore.GeneratePhone(60)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompressSVDD(t *testing.T) {
	in := writeDataset(t)
	out := filepath.Join(t.TempDir(), "d.sqz")
	err := run([]string{"-in", in, "-out", out, "-method", "svdd", "-budget", "0.1", "-verify"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := seqstore.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Method() != seqstore.SVDD {
		t.Errorf("method = %v", st.Method())
	}
	if st.SpaceRatio() > 0.1+1e-9 {
		t.Errorf("over budget: %v", st.SpaceRatio())
	}
}

func TestRunCompressDCTWithK(t *testing.T) {
	in := writeDataset(t)
	out := filepath.Join(t.TempDir(), "d.sqz")
	if err := run([]string{"-in", in, "-out", out, "-method", "dct", "-k", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-in", "x"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-in", "/nonexistent.smx", "-out", "/tmp/x.sqz", "-budget", "0.1"}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunCompressHalfRobustZeroFlags(t *testing.T) {
	in := writeDataset(t)
	dir := t.TempDir()
	outHalf := filepath.Join(dir, "half.sqz")
	if err := run([]string{"-in", in, "-out", outHalf, "-budget", "0.1", "-half", "-zero-flags"}); err != nil {
		t.Fatal(err)
	}
	outFull := filepath.Join(dir, "full.sqz")
	if err := run([]string{"-in", in, "-out", outFull, "-budget", "0.1"}); err != nil {
		t.Fatal(err)
	}
	hi, err := os.Stat(outHalf)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(outFull)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Size() >= fi.Size() {
		t.Errorf("half file %d not smaller than full %d", hi.Size(), fi.Size())
	}
	if err := run([]string{"-in", in, "-out", filepath.Join(dir, "r.sqz"), "-budget", "0.1", "-robust"}); err != nil {
		t.Fatal(err)
	}
}
