// Command seqcompress compresses a .smx dataset into a randomly accessible
// .sqz store with any of the paper's methods.
//
//	seqcompress -in phone2000.smx -out phone2000.sqz -method svdd -budget 0.10
//	seqcompress -in stocks.smx -out stocks.sqz -method dct -k 12
//	seqcompress -in phone.smx -out phone.sqz -budget 0.10 -half -zero-flags
//
// It prints the achieved space ratio and, when -verify is given, the full
// reconstruction-error report against the input. With -progress the
// compression passes log structured start/done lines (shard counts,
// elapsed time) to stderr as they run — the long passes on a large
// out-of-core dataset are no longer silent.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"seqstore"
	"seqstore/internal/svd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "seqcompress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("seqcompress", flag.ContinueOnError)
	in := fs.String("in", "", "input .smx dataset (required)")
	out := fs.String("out", "", "output .sqz store (required)")
	method := fs.String("method", "svdd", "method: svdd, svd, dct, wavelet, cluster, kmeans")
	budget := fs.Float64("budget", 0, "space budget as a fraction of the input, e.g. 0.10")
	k := fs.Int("k", 0, "components/clusters (overrides -budget derivation)")
	noBloom := fs.Bool("no-bloom", false, "disable the SVDD Bloom filter")
	half := fs.Bool("half", false, "store numbers as float32 (b=4): half the file, ~1e-7 rounding")
	robust := fs.Bool("robust", false, "outlier-resistant factors (svd/svdd; loads the matrix into memory)")
	zeroFlags := fs.Bool("zero-flags", false, "flag all-zero rows for instant reconstruction (svdd)")
	workers := fs.Int("workers", 0, "worker goroutines for the compression passes (svd/svdd): 0 = all CPUs, 1 = serial")
	compressor := fs.String("compressor", "gram", "factor algorithm (svd/svdd): gram builds the M×M similarity matrix; randomized streams an O(M·(k+p))-memory sketch — use it when sequences are very long")
	powerIters := fs.Int("power-iters", 0, "randomized compressor refinement passes (one extra streaming pass each): 0 = method default, -1 = none")
	verify := fs.Bool("verify", false, "report reconstruction error against the input")
	progress := fs.Bool("progress", false, "log per-pass compression progress to stderr")
	logFormat := fs.String("log-format", "text", "progress log format: json or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if *progress {
		var h slog.Handler
		switch *logFormat {
		case "json":
			h = slog.NewJSONHandler(os.Stderr, nil)
		case "text":
			h = slog.NewTextHandler(os.Stderr, nil)
		default:
			return fmt.Errorf("unknown -log-format %q (want json|text)", *logFormat)
		}
		// The compression passes (accumulate C, eigendecompose, project U)
		// log start/done lines with shard counts and elapsed time.
		svd.SetProgressLogger(slog.New(h))
	}

	opts := seqstore.Options{
		Method:        seqstore.Method(*method),
		Budget:        *budget,
		K:             *k,
		DisableBloom:  *noBloom,
		HalfPrecision: *half,
		Robust:        *robust,
		FlagZeroRows:  *zeroFlags,
		Workers:       *workers,
		Compressor:    *compressor,
		PowerIters:    *powerIters,
	}
	start := time.Now()
	st, err := seqstore.CompressFile(*in, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := st.Save(*out); err != nil {
		return err
	}
	rows, cols := st.Dims()
	fmt.Printf("%s: %d×%d compressed with %s to %.2f%% of original (%d stored numbers) in %v\n",
		*out, rows, cols, st.Method(), 100*st.SpaceRatio(), st.StoredNumbers(),
		elapsed.Round(time.Millisecond))
	if info, ok := st.SVDDInfo(); ok {
		fmt.Printf("svdd: k_opt=%d of k_max=%d, %d outlier deltas\n",
			info.K, info.KMax, info.Outliers)
	}
	if *verify {
		x, err := seqstore.LoadMatrix(*in)
		if err != nil {
			return err
		}
		rep, err := st.Evaluate(x)
		if err != nil {
			return err
		}
		fmt.Println("verify:", rep)
	}
	return nil
}
