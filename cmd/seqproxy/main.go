// Command seqproxy is the distributed tier's stateless front door: it
// serves the same typed /v1 contract as a seqserver store node, but routes
// each request over N store nodes that each own a contiguous row range of
// the matrix, as described by a JSON topology file:
//
//	{"shards": [
//	  {"addr": "http://10.0.0.1:8080", "lo": 0,    "hi": 4096},
//	  {"addr": "http://10.0.0.2:8080", "lo": 4096, "hi": -1}
//	]}
//
//	seqproxy -topology cluster.json -addr :8090
//
// Ranges must tile [0, n) contiguously; the last range may be open-ended
// (hi = -1), in which case it absorbs /v1/bulk appends. The file is
// re-read on SIGHUP, swapping the shard set without dropping in-flight
// requests.
//
// Routing:
//
//	/v1/cell, /v1/row        routed to the shard owning row i
//	/v1/cells, /v1/rows      fanned out by shard, reassembled in request order
//	/v1/agg, /v1/aggregate,  scattered: the selection splits by shard row
//	/v1/aggregate/batch      range, each shard evaluates its fragment into
//	                         an exact mergeable partial, and the proxy
//	                         gathers in shard order — the merged value is
//	                         bit-identical to a single node evaluating the
//	                         unsplit selection; "explain": true returns the
//	                         per-shard plans and cost estimates merged under
//	                         one block
//	/v1/bulk                 forwarded to the open-ended shard, row indices
//	                         re-mapped to global
//	/v1/info                 composed from per-shard infos
//	/v1/healthz              per-shard liveness; with -slo-objective, the
//	                         per-endpoint attainment and burn-rate report
//	/v1/metrics              proxy endpoint histograms + per-shard gauges
//	                         (inflight, errors, hedges, p99); ?format=prom
//	                         renders Prometheus text; ?scope=cluster scrapes
//	                         and merges every store node's registry, each
//	                         sample labeled shard="N"
//	/v1/debug/traces         ring of completed request traces: the full
//	                         scatter/gather tree, per-attempt hedge outcomes
//	                         and per-shard ledger splits under one trace id
//
// Every response carries X-Request-Id and the full X-Cost-* ledger, where
// the proxy's counts are the sums of the per-shard ledgers it gathered —
// the paper's disk-access cost model survives the network hop. The proxy
// propagates a W3C-style traceparent on every shard call; store nodes
// adopt it and return compact span summaries that are folded into the
// proxy's trace.
//
// A dead or stalled store node turns into a typed 503 with the failing
// shards named in the error detail, within -shard-timeout; idempotent
// point reads are retried against the same shard after -hedge-after.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqstore/internal/cluster"
)

func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json", "":
		return slog.New(slog.NewJSONHandler(os.Stdout, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stdout, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want json|text)", format)
	}
}

func main() {
	fs := flag.NewFlagSet("seqproxy", flag.ExitOnError)
	topoPath := fs.String("topology", "", "JSON shard topology file (required); re-read on SIGHUP")
	addr := fs.String("addr", ":8090", "listen address")
	shardTimeout := fs.Duration("shard-timeout", cluster.DefaultTimeout,
		"per-shard request deadline; a silent shard is reported unavailable after this")
	hedgeAfter := fs.Duration("hedge-after", 0,
		"hedge idempotent point reads against a slow shard after this delay (0 disables)")
	logFormat := fs.String("log-format", "json", "structured log format: json or text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	traceBuffer := fs.Int("trace-buffer", 0,
		"request traces kept for /v1/debug/traces (0 = default)")
	slowQuery := fs.Duration("slow-query", 0,
		"log requests at least this slow at Warn with cost ledger, trace id and winning shards (0 disables)")
	sloObjective := fs.Duration("slo-objective", 0,
		"per-endpoint latency objective reported by /v1/metrics and /v1/healthz (0 disables)")
	sloTarget := fs.Float64("slo-target", 0.99,
		"fraction of requests that must meet -slo-objective")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second,
		"max time to drain in-flight requests on SIGINT/SIGTERM")
	fs.Parse(os.Args[1:])
	if *topoPath == "" {
		fmt.Fprintln(os.Stderr, "seqproxy: -topology is required")
		os.Exit(1)
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqproxy: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	proxy, err := cluster.New(*topoPath, cluster.Options{
		Timeout:      *shardTimeout,
		HedgeAfter:   *hedgeAfter,
		Logger:       logger,
		SlowQuery:    *slowQuery,
		TraceBuffer:  *traceBuffer,
		SLOObjective: *sloObjective,
		SLOTarget:    *sloTarget,
	})
	if err != nil {
		log.Fatalf("seqproxy: %v", err)
	}

	// SIGHUP hot-reloads the topology file; a bad file logs and keeps the
	// current shard set serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := proxy.ReloadFile(); err != nil {
				logger.Error("topology reload failed; keeping current topology", "err", err)
				continue
			}
			logger.Info("topology reloaded", "file", *topoPath)
		}
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           proxy,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// Write timeout leaves headroom over the scatter deadline so a
		// slow shard yields a typed 503, not a severed connection.
		WriteTimeout: *shardTimeout + 30*time.Second,
		IdleTimeout:  120 * time.Second,
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("seqproxy: listen %s: %v", *addr, err)
	}
	logger.Info("proxy serving", "addr", l.Addr().String(),
		"topology", *topoPath, "shard_timeout", *shardTimeout, "hedge_after", *hedgeAfter)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("seqproxy: %v", err)
		}
		return
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		log.Fatalf("seqproxy: shutdown: %v", err)
	}
	logger.Info("proxy stopped")
}
