package seqstore

import (
	"context"
	"log/slog"

	"seqstore/internal/svd"
	"seqstore/internal/trace"
)

// This file is the facade over internal/trace: cost attribution for
// embedders. A caller who wants to know what a query cost — disk accesses
// under the paper's one-row-one-block model, rows reconstructed, pages
// touched — attaches a CostLedger to the context passed to
// AggregateContext and reads it back afterwards. The same machinery powers
// the HTTP serving layer's X-Cost-Disk-Accesses header and
// /v1/debug/traces ring.

// CostLedger accumulates the paper's cost model for the queries evaluated
// under one context. All methods are safe for concurrent use; the zero
// value is ready.
type CostLedger = trace.Ledger

// Cost is the point-in-time reading of a CostLedger.
type Cost = trace.LedgerSnapshot

// WithCost returns a context carrying led: queries evaluated with the
// returned context (AggregateContext, the serving layer's handlers) charge
// their disk accesses, row reads, page touches and delta probes to it.
//
//	var led seqstore.CostLedger
//	ctx := seqstore.WithCost(context.Background(), &led)
//	v, err := st.AggregateContext(ctx, seqstore.Avg, rows, cols, opts)
//	cost := led.Snapshot() // cost.DiskAccesses, cost.RowsRead, ...
func WithCost(ctx context.Context, led *CostLedger) context.Context {
	return trace.WithLedger(ctx, led)
}

// CostFrom returns the ledger carried by ctx, or nil when ctx is untraced.
// The nil result is usable: every CostLedger method accepts a nil receiver
// and reads as zero.
func CostFrom(ctx context.Context) *CostLedger {
	return trace.LedgerFrom(ctx)
}

// SetProgressLogger routes structured progress logs from the long
// compression passes (accumulate C, eigendecompose, project U) to l; nil
// restores silence. Concurrency-safe; applies process-wide.
func SetProgressLogger(l *slog.Logger) {
	svd.SetProgressLogger(l)
}
